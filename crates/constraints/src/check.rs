//! Constraint satisfaction checking and violation enumeration.

use crate::constraint::{Constraint, ConstraintHead};
use crate::Result;
use relalg::database::{Database, GroundAtom};
use relalg::query::{Binding, Formula, QueryEvaluator};
use relalg::Value;
use std::collections::BTreeSet;

/// A single violation of a constraint: a binding of the constraint's
/// universal variables under which the body holds but the head does not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated constraint.
    pub constraint: String,
    /// Binding of the universal (body) variables witnessing the violation.
    pub binding: Binding,
}

impl Violation {
    /// The ground body atoms participating in the violation, in body order.
    pub fn ground_body(&self, constraint: &Constraint) -> Vec<GroundAtom> {
        constraint
            .body
            .iter()
            .filter_map(|a| a.ground(&self.binding))
            .collect()
    }
}

/// Checks constraints against a fixed database instance.
pub struct ConstraintChecker<'a> {
    db: &'a Database,
    evaluator: QueryEvaluator<'a>,
}

impl<'a> ConstraintChecker<'a> {
    /// Create a checker for the given instance.
    pub fn new(db: &'a Database) -> Self {
        ConstraintChecker {
            db,
            evaluator: QueryEvaluator::new(db),
        }
    }

    /// Create a checker whose quantifiers also range over additional domain
    /// values (e.g. the active domain of a wider, multi-peer instance).
    pub fn with_domain(db: &'a Database, domain: impl IntoIterator<Item = Value>) -> Self {
        ConstraintChecker {
            db,
            evaluator: QueryEvaluator::with_domain(db, domain),
        }
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &QueryEvaluator<'a> {
        &self.evaluator
    }

    /// Is the constraint satisfied by the instance?
    pub fn satisfied(&self, constraint: &Constraint) -> Result<bool> {
        Ok(self.violations(constraint)?.is_empty())
    }

    /// Are all constraints satisfied?
    pub fn all_satisfied<'c, I: IntoIterator<Item = &'c Constraint>>(
        &self,
        constraints: I,
    ) -> Result<bool> {
        for c in constraints {
            if !self.satisfied(c)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Enumerate every violation of the constraint: bindings of the body
    /// variables for which the body is true and the head is false.
    pub fn violations(&self, constraint: &Constraint) -> Result<Vec<Violation>> {
        let body = constraint.body_formula();
        let mut out = Vec::new();
        for binding in self.evaluator.bindings(&body, &Binding::new())? {
            if !self.head_satisfied(constraint, &binding)? {
                out.push(Violation {
                    constraint: constraint.name.clone(),
                    binding,
                });
            }
        }
        Ok(out)
    }

    /// Enumerate the violations of every constraint in a collection.
    pub fn all_violations<'c, I: IntoIterator<Item = &'c Constraint>>(
        &self,
        constraints: I,
    ) -> Result<Vec<(&'c Constraint, Violation)>> {
        let mut out = Vec::new();
        for c in constraints {
            for v in self.violations(c)? {
                out.push((c, v));
            }
        }
        Ok(out)
    }

    /// Is the constraint's head satisfied under the binding of its body
    /// variables?
    pub fn head_satisfied(&self, constraint: &Constraint, binding: &Binding) -> Result<bool> {
        match &constraint.head {
            ConstraintHead::False => Ok(false),
            ConstraintHead::Equality(l, r) => {
                let lv = l.resolve(binding);
                let rv = r.resolve(binding);
                match (lv, rv) {
                    (Some(a), Some(b)) => Ok(a == b),
                    _ => Ok(false),
                }
            }
            ConstraintHead::Atoms(atoms) => {
                let inner = Formula::and(atoms.iter().map(|a| a.to_formula()).collect());
                let evars: Vec<String> = constraint.existential_variables().into_iter().collect();
                let head = Formula::exists(evars, inner);
                Ok(self.evaluator.holds(&head, binding)?)
            }
        }
    }

    /// The ways the head of a violated constraint can be *made* true by
    /// inserting tuples, given which relations are flexible (changeable).
    ///
    /// Each returned option is a set of ground atoms to insert, all of them
    /// over flexible relations. For referential constraints the existential
    /// witnesses are drawn from the candidate values for which every head
    /// atom over a *fixed* relation already holds — exactly the role the
    /// `choice` operator plays in the paper's rule (9), where the witness `w`
    /// must satisfy the fixed companion atom `S2(z, w)`. When no head atom is
    /// over a fixed relation the witnesses range over the instance's active
    /// domain.
    ///
    /// Returns an empty vector when the head cannot be satisfied by
    /// insertions alone (equality and denial heads, or heads whose fixed
    /// part cannot be witnessed).
    pub fn head_insertion_options<F>(
        &self,
        constraint: &Constraint,
        binding: &Binding,
        is_flexible: F,
    ) -> Result<Vec<Vec<GroundAtom>>>
    where
        F: Fn(&str) -> bool,
    {
        let atoms = match &constraint.head {
            ConstraintHead::Atoms(atoms) => atoms,
            _ => return Ok(vec![]),
        };
        let evars: Vec<String> = constraint.existential_variables().into_iter().collect();

        // Enumerate witness bindings for the existential variables.
        let witness_bindings: Vec<Binding> = if evars.is_empty() {
            vec![binding.clone()]
        } else {
            // Constrain witnesses by the fixed head atoms when possible.
            let fixed_atoms: Vec<Formula> = atoms
                .iter()
                .filter(|a| !is_flexible(&a.relation))
                .map(|a| a.to_formula())
                .collect();
            if fixed_atoms.is_empty() {
                // Cartesian product of the active domain over the witnesses.
                let mut acc = vec![binding.clone()];
                for v in &evars {
                    let mut next = Vec::new();
                    for b in &acc {
                        for value in self.evaluator.domain() {
                            let mut nb = b.clone();
                            nb.insert(v.clone(), value.clone());
                            next.push(nb);
                        }
                    }
                    acc = next;
                }
                acc
            } else {
                self.evaluator
                    .bindings(&Formula::and(fixed_atoms), binding)?
            }
        };

        let mut options: Vec<Vec<GroundAtom>> = Vec::new();
        let mut seen: BTreeSet<Vec<GroundAtom>> = BTreeSet::new();
        'witness: for wb in witness_bindings {
            let mut insertions = Vec::new();
            for atom in atoms {
                let ground = match atom.ground(&wb) {
                    Some(g) => g,
                    None => continue 'witness,
                };
                if is_flexible(&atom.relation) {
                    if !self.db.holds(&ground.relation, &ground.tuple) {
                        insertions.push(ground);
                    }
                } else if !self.db.holds(&ground.relation, &ground.tuple) {
                    // A fixed head atom that does not hold cannot be inserted:
                    // this witness choice is unusable.
                    continue 'witness;
                }
            }
            insertions.sort();
            if seen.insert(insertions.clone()) {
                options.push(insertions);
            }
        }
        // Drop options that are supersets of other options: inserting less is
        // always preferred by the minimality semantics.
        options.retain(|opt| !opt.is_empty());
        Ok(options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::AtomPattern;
    use crate::constraint::{Condition, ConstraintHead};
    use relalg::query::{CompareOp, Term};
    use relalg::{Relation, RelationSchema, Tuple};

    /// The Example 1 global instance.
    fn example1_db() -> Database {
        let mut db = Database::new();
        for r in ["R1", "R2", "R3"] {
            db.add_relation(Relation::new(RelationSchema::new(r, &["x", "y"])));
        }
        for (r, a, b) in [
            ("R1", "a", "b"),
            ("R1", "s", "t"),
            ("R2", "c", "d"),
            ("R2", "a", "e"),
            ("R3", "a", "f"),
            ("R3", "s", "u"),
        ] {
            db.insert(r, Tuple::strs([a, b])).unwrap();
        }
        db
    }

    fn full_inclusion() -> Constraint {
        Constraint::new(
            "dec_p1_p2",
            vec![AtomPattern::parse("R2", &["X", "Y"])],
            vec![],
            ConstraintHead::Atoms(vec![AtomPattern::parse("R1", &["X", "Y"])]),
        )
        .unwrap()
    }

    fn key_conflict() -> Constraint {
        Constraint::new(
            "dec_p1_p3",
            vec![
                AtomPattern::parse("R1", &["X", "Y"]),
                AtomPattern::parse("R3", &["X", "Z"]),
            ],
            vec![],
            ConstraintHead::Equality(Term::var("Y"), Term::var("Z")),
        )
        .unwrap()
    }

    #[test]
    fn inclusion_violations_are_the_missing_r1_tuples() {
        let db = example1_db();
        let checker = ConstraintChecker::new(&db);
        let c = full_inclusion();
        assert!(!checker.satisfied(&c).unwrap());
        let violations = checker.violations(&c).unwrap();
        assert_eq!(violations.len(), 2);
        let grounds: BTreeSet<GroundAtom> =
            violations.iter().flat_map(|v| v.ground_body(&c)).collect();
        assert!(grounds.contains(&GroundAtom::new("R2", Tuple::strs(["c", "d"]))));
        assert!(grounds.contains(&GroundAtom::new("R2", Tuple::strs(["a", "e"]))));
    }

    #[test]
    fn key_conflict_violations_pair_r1_with_r3() {
        let db = example1_db();
        let checker = ConstraintChecker::new(&db);
        let c = key_conflict();
        let violations = checker.violations(&c).unwrap();
        // (a,b)-(a,f) and (s,t)-(s,u).
        assert_eq!(violations.len(), 2);
        for v in &violations {
            assert_eq!(v.ground_body(&c).len(), 2);
        }
    }

    #[test]
    fn satisfied_constraint_has_no_violations() {
        let db = example1_db();
        let checker = ConstraintChecker::new(&db);
        let trivial = Constraint::new(
            "trivial",
            vec![AtomPattern::parse("R1", &["X", "Y"])],
            vec![],
            ConstraintHead::Atoms(vec![AtomPattern::parse("R1", &["X", "Y"])]),
        )
        .unwrap();
        assert!(checker.satisfied(&trivial).unwrap());
        assert!(checker.all_satisfied([&trivial].into_iter()).unwrap());
        assert!(!checker
            .all_satisfied([&trivial, &full_inclusion()].iter().copied())
            .unwrap());
    }

    #[test]
    fn insertion_options_for_universal_constraint() {
        let db = example1_db();
        let checker = ConstraintChecker::new(&db);
        let c = full_inclusion();
        let violations = checker.violations(&c).unwrap();
        let opts = checker
            .head_insertion_options(&c, &violations[0].binding, |r| r == "R1")
            .unwrap();
        assert_eq!(opts.len(), 1);
        assert_eq!(opts[0].len(), 1);
        assert_eq!(opts[0][0].relation, "R1");
    }

    #[test]
    fn insertion_options_empty_when_head_relation_fixed() {
        let db = example1_db();
        let checker = ConstraintChecker::new(&db);
        let c = full_inclusion();
        let violations = checker.violations(&c).unwrap();
        let opts = checker
            .head_insertion_options(&c, &violations[0].binding, |_| false)
            .unwrap();
        assert!(opts.is_empty());
    }

    #[test]
    fn equality_head_has_no_insertion_fix() {
        let db = example1_db();
        let checker = ConstraintChecker::new(&db);
        let c = key_conflict();
        let violations = checker.violations(&c).unwrap();
        let opts = checker
            .head_insertion_options(&c, &violations[0].binding, |_| true)
            .unwrap();
        assert!(opts.is_empty());
    }

    #[test]
    fn referential_witnesses_come_from_fixed_companion() {
        // Section 3.1 setting: R1(d, m), S1(a, m), S2 holds candidate
        // witnesses; R2 is flexible, S2 is fixed.
        let mut db = Database::new();
        for (r, attrs) in [("R1", 2), ("R2", 2), ("S1", 2), ("S2", 2)] {
            db.add_relation(Relation::new(RelationSchema::with_arity(r, attrs)));
        }
        db.insert("R1", Tuple::strs(["d", "m"])).unwrap();
        db.insert("S1", Tuple::strs(["a", "m"])).unwrap();
        db.insert("S2", Tuple::strs(["a", "t1"])).unwrap();
        db.insert("S2", Tuple::strs(["a", "t2"])).unwrap();
        let c = Constraint::new(
            "sigma3",
            vec![
                AtomPattern::parse("R1", &["X", "Y"]),
                AtomPattern::parse("S1", &["Z", "Y"]),
            ],
            vec![],
            ConstraintHead::Atoms(vec![
                AtomPattern::parse("R2", &["X", "W"]),
                AtomPattern::parse("S2", &["Z", "W"]),
            ]),
        )
        .unwrap();
        let checker = ConstraintChecker::new(&db);
        let violations = checker.violations(&c).unwrap();
        assert_eq!(violations.len(), 1);
        let opts = checker
            .head_insertion_options(&c, &violations[0].binding, |r| r == "R1" || r == "R2")
            .unwrap();
        // Two witnesses t1, t2 → two insertion alternatives for R2(d, ·).
        assert_eq!(opts.len(), 2);
        for opt in &opts {
            assert_eq!(opt.len(), 1);
            assert_eq!(opt[0].relation, "R2");
        }
    }

    #[test]
    fn referential_without_witness_has_no_insertion_option() {
        // Same as above but S2 has no tuple for the key `a`.
        let mut db = Database::new();
        for r in ["R1", "R2", "S1", "S2"] {
            db.add_relation(Relation::new(RelationSchema::with_arity(r, 2)));
        }
        db.insert("R1", Tuple::strs(["d", "m"])).unwrap();
        db.insert("S1", Tuple::strs(["a", "m"])).unwrap();
        db.insert("S2", Tuple::strs(["b", "t1"])).unwrap();
        let c = Constraint::new(
            "sigma3",
            vec![
                AtomPattern::parse("R1", &["X", "Y"]),
                AtomPattern::parse("S1", &["Z", "Y"]),
            ],
            vec![],
            ConstraintHead::Atoms(vec![
                AtomPattern::parse("R2", &["X", "W"]),
                AtomPattern::parse("S2", &["Z", "W"]),
            ]),
        )
        .unwrap();
        let checker = ConstraintChecker::new(&db);
        let violations = checker.violations(&c).unwrap();
        assert_eq!(violations.len(), 1);
        let opts = checker
            .head_insertion_options(&c, &violations[0].binding, |r| r == "R1" || r == "R2")
            .unwrap();
        assert!(opts.is_empty());
    }

    #[test]
    fn denial_constraint_violations() {
        let db = example1_db();
        let checker = ConstraintChecker::new(&db);
        // FD on R2: same key, different values → violated? R2 = {(c,d),(a,e)}
        // has distinct keys, so the FD holds.
        let fd = Constraint::new(
            "fd_r2",
            vec![
                AtomPattern::parse("R2", &["X", "Y"]),
                AtomPattern::parse("R2", &["X", "Z"]),
            ],
            vec![Condition::new(
                CompareOp::Neq,
                Term::var("Y"),
                Term::var("Z"),
            )],
            ConstraintHead::False,
        )
        .unwrap();
        assert!(checker.satisfied(&fd).unwrap());
        // A denial over R1 keys with R3: violated twice (a and s).
        let denial = Constraint::new(
            "no_shared_keys",
            vec![
                AtomPattern::parse("R1", &["X", "Y"]),
                AtomPattern::parse("R3", &["X", "Z"]),
            ],
            vec![],
            ConstraintHead::False,
        )
        .unwrap();
        let violations = checker.violations(&denial).unwrap();
        assert_eq!(violations.len(), 2);
    }

    #[test]
    fn all_violations_aggregates_across_constraints() {
        let db = example1_db();
        let checker = ConstraintChecker::new(&db);
        let cs = [full_inclusion(), key_conflict()];
        let all = checker.all_violations(cs.iter()).unwrap();
        assert_eq!(all.len(), 4);
    }
}

//! Errors raised by constraint construction and checking.

use std::fmt;

/// Errors raised by the constraints crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// A constraint was declared with an empty antecedent, which makes the
    /// universal closure unsafe to evaluate.
    EmptyBody(String),
    /// A constraint's consequent uses a variable that is neither universally
    /// quantified (in the body) nor existential in a relational atom.
    UnsafeHeadVariable {
        /// Name of the offending constraint.
        constraint: String,
        /// The head variable with no binding occurrence.
        variable: String,
    },
    /// Propagated evaluation error from the relational layer.
    Relalg(relalg::RelalgError),
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::EmptyBody(name) => {
                write!(f, "constraint `{name}` has an empty antecedent")
            }
            ConstraintError::UnsafeHeadVariable { constraint, variable } => write!(
                f,
                "constraint `{constraint}` uses head variable `{variable}` outside any relational atom"
            ),
            ConstraintError::Relalg(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ConstraintError {}

impl From<relalg::RelalgError> for ConstraintError {
    fn from(e: relalg::RelalgError) -> Self {
        ConstraintError::Relalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_constraint_names() {
        let e = ConstraintError::EmptyBody("dec1".into());
        assert!(e.to_string().contains("dec1"));
        let e = ConstraintError::UnsafeHeadVariable {
            constraint: "dec2".into(),
            variable: "W".into(),
        };
        assert!(e.to_string().contains('W'));
    }

    #[test]
    fn relalg_errors_convert() {
        let e: ConstraintError = relalg::RelalgError::UnknownRelation("R".into()).into();
        assert!(matches!(e, ConstraintError::Relalg(_)));
    }
}

//! Convenience constructors for the constraint shapes used throughout the
//! paper: full inclusion dependencies, referential (foreign-key style)
//! dependencies, functional dependencies / key constraints and denials.

use crate::atom::AtomPattern;
use crate::constraint::{Condition, Constraint, ConstraintHead};
use crate::Result;
use relalg::query::{CompareOp, Term};

/// Fresh variable names `X0, X1, …` used by the positional builders.
fn positional_vars(prefix: &str, arity: usize) -> Vec<Term> {
    (0..arity)
        .map(|i| Term::var(format!("{prefix}{i}")))
        .collect()
}

/// Full inclusion dependency `∀x̄ (source(x̄) → target(x̄))`
/// — the shape of `Σ(P1, P2)` in Example 1.
pub fn full_inclusion(
    name: impl Into<String>,
    source: &str,
    target: &str,
    arity: usize,
) -> Result<Constraint> {
    let vars = positional_vars("X", arity);
    Constraint::new(
        name,
        vec![AtomPattern::new(source, vars.clone())],
        vec![],
        ConstraintHead::Atoms(vec![AtomPattern::new(target, vars)]),
    )
}

/// Projection inclusion dependency
/// `∀x̄ ∃ȳ (source(x̄) → target(x̄[positions], ȳ))`:
/// the listed source positions must appear (in order) as the first components
/// of some target tuple; remaining target components are existential.
/// This is the referential constraint shape (2) of Section 3.
pub fn referential_inclusion(
    name: impl Into<String>,
    source: &str,
    source_arity: usize,
    key_positions: &[usize],
    target: &str,
    target_arity: usize,
) -> Result<Constraint> {
    let source_vars = positional_vars("X", source_arity);
    let mut target_terms: Vec<Term> = key_positions
        .iter()
        .map(|&p| {
            source_vars
                .get(p)
                .cloned()
                .unwrap_or_else(|| Term::var(format!("X{p}")))
        })
        .collect();
    let existential_count = target_arity.saturating_sub(target_terms.len());
    target_terms.extend(positional_vars("W", existential_count));
    Constraint::new(
        name,
        vec![AtomPattern::new(source, source_vars)],
        vec![],
        ConstraintHead::Atoms(vec![AtomPattern::new(target, target_terms)]),
    )
}

/// Functional dependency expressed as an equality-generating constraint:
/// two tuples of `relation` that agree on `key_positions` must agree on
/// `value_position`.
pub fn functional_dependency(
    name: impl Into<String>,
    relation: &str,
    arity: usize,
    key_positions: &[usize],
    value_position: usize,
) -> Result<Constraint> {
    let left = positional_vars("X", arity);
    let right: Vec<Term> = (0..arity)
        .map(|i| {
            if key_positions.contains(&i) {
                left[i].clone()
            } else {
                Term::var(format!("Y{i}"))
            }
        })
        .collect();
    let head =
        ConstraintHead::Equality(left[value_position].clone(), right[value_position].clone());
    Constraint::new(
        name,
        vec![
            AtomPattern::new(relation, left),
            AtomPattern::new(relation, right),
        ],
        vec![],
        head,
    )
}

/// Cross-relation key conflict
/// `∀x y z (left(x, y) ∧ right(x, z) → y = z)` — the shape of `Σ(P1, P3)` in
/// Example 1, generalized to arbitrary key/value positions of binary
/// relations.
pub fn key_agreement(name: impl Into<String>, left: &str, right: &str) -> Result<Constraint> {
    Constraint::new(
        name,
        vec![
            AtomPattern::parse(left, &["X", "Y"]),
            AtomPattern::parse(right, &["X", "Z"]),
        ],
        vec![],
        ConstraintHead::Equality(Term::var("Y"), Term::var("Z")),
    )
}

/// Denial constraint forbidding two tuples of a binary relation to share a
/// key with different values (the program-constraint form of a key FD used in
/// Section 3.2).
pub fn key_denial(name: impl Into<String>, relation: &str) -> Result<Constraint> {
    Constraint::new(
        name,
        vec![
            AtomPattern::parse(relation, &["X", "Y"]),
            AtomPattern::parse(relation, &["X", "Z"]),
        ],
        vec![Condition::new(
            CompareOp::Neq,
            Term::var("Y"),
            Term::var("Z"),
        )],
        ConstraintHead::False,
    )
}

/// The mixed referential constraint (3) of Section 3.1:
/// `∀x y z ∃w (r1(x, y) ∧ s1(z, y) → r2(x, w) ∧ s2(z, w))`.
pub fn mixed_referential(
    name: impl Into<String>,
    r1: &str,
    s1: &str,
    r2: &str,
    s2: &str,
) -> Result<Constraint> {
    Constraint::new(
        name,
        vec![
            AtomPattern::parse(r1, &["X", "Y"]),
            AtomPattern::parse(s1, &["Z", "Y"]),
        ],
        vec![],
        ConstraintHead::Atoms(vec![
            AtomPattern::parse(r2, &["X", "W"]),
            AtomPattern::parse(s2, &["Z", "W"]),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintClass;

    #[test]
    fn full_inclusion_is_universal() {
        let c = full_inclusion("d", "R2", "R1", 2).unwrap();
        assert_eq!(c.class(), ConstraintClass::Universal);
        assert_eq!(c.body_relations().len(), 1);
        assert!(c.head_relations().contains("R1"));
        assert!(c.existential_variables().is_empty());
    }

    #[test]
    fn referential_inclusion_introduces_existentials() {
        let c = referential_inclusion("d", "U", 2, &[0], "S1", 2).unwrap();
        assert_eq!(c.class(), ConstraintClass::Referential);
        assert_eq!(c.existential_variables().len(), 1);
    }

    #[test]
    fn referential_inclusion_without_existentials_degenerates_to_universal() {
        let c = referential_inclusion("d", "U", 2, &[0, 1], "S1", 2).unwrap();
        assert_eq!(c.class(), ConstraintClass::Universal);
    }

    #[test]
    fn functional_dependency_is_egd() {
        let c = functional_dependency("fd", "R1", 2, &[0], 1).unwrap();
        assert_eq!(c.class(), ConstraintClass::EqualityGenerating);
        assert_eq!(c.body.len(), 2);
    }

    #[test]
    fn key_agreement_matches_example1_shape() {
        let c = key_agreement("dec", "R1", "R3").unwrap();
        assert_eq!(c.class(), ConstraintClass::EqualityGenerating);
        assert_eq!(c.to_string(), "dec: R1(X, Y) and R3(X, Z) -> Y = Z");
    }

    #[test]
    fn key_denial_is_denial() {
        let c = key_denial("ic", "R1").unwrap();
        assert_eq!(c.class(), ConstraintClass::Denial);
        assert_eq!(c.conditions.len(), 1);
    }

    #[test]
    fn mixed_referential_matches_section31_shape() {
        let c = mixed_referential("sigma", "R1", "S1", "R2", "S2").unwrap();
        assert_eq!(c.class(), ConstraintClass::Referential);
        assert_eq!(c.existential_variables().len(), 1);
        assert_eq!(c.relations().len(), 4);
    }
}

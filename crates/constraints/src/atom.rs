//! Atom patterns: relational atoms with variables, the building block of
//! constraint bodies and heads.

use relalg::database::GroundAtom;
use relalg::query::{Binding, Formula, Term};
use relalg::{Tuple, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A relational atom `R(t1, …, tn)` whose terms may be variables or constants.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AtomPattern {
    /// Relation name.
    pub relation: String,
    /// Terms, in positional order.
    pub terms: Vec<Term>,
}

impl AtomPattern {
    /// Construct an atom pattern from explicit terms.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        AtomPattern {
            relation: relation.into(),
            terms,
        }
    }

    /// Construct an atom pattern using the [`Term::parse`] token convention
    /// (uppercase-initial tokens are variables).
    pub fn parse<S: AsRef<str>>(relation: impl Into<String>, tokens: &[S]) -> Self {
        AtomPattern {
            relation: relation.into(),
            terms: tokens.iter().map(|t| Term::parse(t.as_ref())).collect(),
        }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The variables occurring in the atom.
    pub fn variables(&self) -> BTreeSet<String> {
        self.terms
            .iter()
            .filter_map(|t| t.as_var().map(str::to_string))
            .collect()
    }

    /// Convert to a [`Formula`] atom.
    pub fn to_formula(&self) -> Formula {
        Formula::atom_terms(self.relation.clone(), self.terms.clone())
    }

    /// Instantiate the atom under a binding. Returns `None` if some variable
    /// is unbound.
    pub fn ground(&self, binding: &Binding) -> Option<GroundAtom> {
        let mut values: Vec<Value> = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            values.push(t.resolve(binding)?.clone());
        }
        Some(GroundAtom::new(self.relation.clone(), Tuple::new(values)))
    }

    /// Rename the relation of this atom (used to re-target constraints at the
    /// primed / annotated copies of relations).
    pub fn with_relation(&self, relation: impl Into<String>) -> AtomPattern {
        AtomPattern {
            relation: relation.into(),
            terms: self.terms.clone(),
        }
    }
}

impl fmt::Display for AtomPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_distinguishes_variables_and_constants() {
        let a = AtomPattern::parse("R1", &["X", "b"]);
        assert_eq!(a.terms[0], Term::var("X"));
        assert_eq!(a.terms[1], Term::cnst("b"));
        assert_eq!(a.arity(), 2);
        assert_eq!(a.variables(), BTreeSet::from(["X".to_string()]));
    }

    #[test]
    fn ground_requires_all_variables_bound() {
        let a = AtomPattern::parse("R1", &["X", "Y"]);
        let mut binding = Binding::new();
        binding.insert("X".into(), Value::str("a"));
        assert!(a.ground(&binding).is_none());
        binding.insert("Y".into(), Value::str("b"));
        let g = a.ground(&binding).unwrap();
        assert_eq!(g, GroundAtom::new("R1", Tuple::strs(["a", "b"])));
    }

    #[test]
    fn to_formula_and_display() {
        let a = AtomPattern::parse("R2", &["X", "c"]);
        assert_eq!(a.to_formula(), Formula::atom("R2", vec!["X", "c"]));
        assert_eq!(a.to_string(), "R2(X, c)");
    }

    #[test]
    fn with_relation_retargets_atom() {
        let a = AtomPattern::parse("R1", &["X"]);
        let b = a.with_relation("R1_prime");
        assert_eq!(b.relation, "R1_prime");
        assert_eq!(b.terms, a.terms);
    }
}

//! # constraints — integrity and data exchange constraints
//!
//! The paper's framework (Definition 2) attaches two kinds of sentences to a
//! peer `P`:
//!
//! * local integrity constraints `IC(P)` over `P`'s own schema, and
//! * data exchange constraints (DECs) `Σ(P, Q)` written over the union of the
//!   schemas of `P` and another peer `Q`.
//!
//! Both are universally quantified implications, possibly with existential
//! quantifiers in the consequent (the *referential* constraints of Section 3,
//! forms (2) and (3)). This crate provides a single [`Constraint`]
//! representation that covers the classes used throughout the paper:
//!
//! * **universal** constraints — every consequent variable occurs in the
//!   antecedent (e.g. the full inclusion dependency `Σ(P1, P2)` of Example 1);
//! * **referential** constraints — the consequent has existential variables
//!   (e.g. constraint (3) of Section 3.1);
//! * **equality-generating** constraints — the consequent is an equality
//!   (e.g. `Σ(P1, P3)` of Example 1, or a functional dependency);
//! * **denial** constraints — the consequent is `false` (used for local ICs).
//!
//! The crate knows nothing about peers or trust; it only checks sentences
//! against [`relalg::Database`] instances and enumerates their violations,
//! which is what both the repair engine and the specification-program
//! generators consume.

#![warn(missing_docs)]

pub mod atom;
pub mod builders;
pub mod check;
pub mod constraint;
pub mod error;

pub use atom::AtomPattern;
pub use check::{ConstraintChecker, Violation};
pub use constraint::{Constraint, ConstraintClass, ConstraintHead};
pub use error::ConstraintError;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, ConstraintError>;

//! # workload — synthetic P2P data exchange workloads
//!
//! The paper has no experimental evaluation and therefore no public
//! workload. This crate generates parameterized synthetic systems whose
//! knobs match the dimensions the paper's complexity discussion identifies
//! (Section 3.2): number of peers, number of DECs, instance sizes, and the
//! amount of inconsistency between peers. The generated systems use the DEC
//! shapes of the paper's examples (full inclusion dependencies towards
//! more-trusted peers and key-agreement constraints towards equally-trusted
//! peers, plus optional referential constraints), so every answering
//! mechanism — rewriting, ASP specification, naive solution enumeration —
//! can run on them.

//! For live-update experiments, [`updates`] generates deterministic
//! mutation streams (insert/delete mixes with configurable rate and
//! hot-peer skew) expressed as per-peer [`relalg::Delta`]s, ready to commit
//! through a `pdes-session` session.

#![warn(missing_docs)]

pub mod error;
pub mod generator;
pub mod spec;
pub mod updates;

pub use error::WorkloadError;
pub use generator::generate;
pub use spec::{Topology, TrustMix, WorkloadSpec};
pub use updates::{generate_updates, UpdateBatch, UpdateSpec};

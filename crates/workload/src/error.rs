//! Errors raised by workload generation.

use std::fmt;

/// A malformed workload or update-stream specification. Reported instead of
/// panicking so benchmark harnesses can surface the problem and continue
/// with their remaining configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// A spec field is out of its documented range.
    InvalidSpec {
        /// The offending field.
        field: &'static str,
        /// What was wrong with it.
        reason: String,
    },
}

impl WorkloadError {
    /// Shorthand constructor.
    pub fn invalid(field: &'static str, reason: impl Into<String>) -> Self {
        WorkloadError::InvalidSpec {
            field,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidSpec { field, reason } => {
                write!(f, "invalid workload spec: `{field}` {reason}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_field() {
        let e = WorkloadError::invalid("peers", "must be at least 2 (got 1)");
        assert!(e.to_string().contains("peers"));
        assert!(e.to_string().contains("at least 2"));
    }
}

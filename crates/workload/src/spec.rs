//! Workload specifications.

use std::fmt;

/// Shape of the peer/DEC graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// One central peer (the queried one) with DECs towards every other peer.
    Star,
    /// A chain `P0 → P1 → … → Pn`; only consecutive peers exchange data.
    /// Used for the transitive experiments.
    Chain,
}

/// How trust is assigned to the generated DEC targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustMix {
    /// All DEC targets are trusted more than the owner (`less` entries);
    /// conflicts are resolved by importing / deleting the owner's data.
    AllLess,
    /// All DEC targets are trusted the same as the owner.
    AllSame,
    /// Alternate `less` / `same` trust by peer index.
    Mixed,
}

/// A complete description of a synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Number of peers (≥ 2). Peer 0 (`P0`) is the queried peer.
    pub peers: usize,
    /// Tuples per relation in every peer's instance.
    pub tuples_per_relation: usize,
    /// Number of *violations* to plant per DEC (tuples of the other peer
    /// that conflict with / are missing from the queried peer's data).
    pub violations_per_dec: usize,
    /// Graph shape.
    pub topology: Topology,
    /// Trust assignment.
    pub trust_mix: TrustMix,
    /// Fraction (0–100) of DECs that are key-agreement constraints rather
    /// than full inclusions; only meaningful for `same`-trusted targets.
    pub key_constraint_percent: u8,
    /// Random seed (the generator is fully deterministic given the spec).
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            peers: 2,
            tuples_per_relation: 20,
            violations_per_dec: 2,
            topology: Topology::Star,
            trust_mix: TrustMix::AllLess,
            key_constraint_percent: 50,
            seed: 42,
        }
    }
}

impl WorkloadSpec {
    /// A small preset that every mechanism (including naive solution
    /// enumeration) can handle quickly; used in tests.
    pub fn tiny() -> Self {
        WorkloadSpec {
            peers: 2,
            tuples_per_relation: 6,
            violations_per_dec: 1,
            ..WorkloadSpec::default()
        }
    }

    /// Name of the queried peer.
    pub fn queried_peer(&self) -> String {
        "P0".to_string()
    }

    /// Name of the queried peer's relation.
    pub fn queried_relation(&self) -> String {
        "T0".to_string()
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "peers={} tuples={} violations={} topo={:?} trust={:?} seed={}",
            self.peers,
            self.tuples_per_relation,
            self.violations_per_dec,
            self.topology,
            self.trust_mix,
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reasonable() {
        let spec = WorkloadSpec::default();
        assert_eq!(spec.peers, 2);
        assert_eq!(spec.queried_peer(), "P0");
        assert_eq!(spec.queried_relation(), "T0");
        assert!(spec.to_string().contains("peers=2"));
    }

    #[test]
    fn tiny_preset_is_smaller() {
        let tiny = WorkloadSpec::tiny();
        assert!(tiny.tuples_per_relation < WorkloadSpec::default().tuples_per_relation);
    }
}

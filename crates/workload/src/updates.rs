//! Deterministic generation of update streams over a generated workload.
//!
//! The live-update benchmarks need a mutation stream to replay against a
//! session: batches of ground-atom insertions and deletions, expressed as
//! [`relalg::Delta`]s targeted at individual peers — the same currency of
//! change as Definition 1 of the paper. [`UpdateSpec`] controls the stream's
//! shape along the dimensions that matter for cache-invalidation behaviour:
//! how many atoms change per batch (the *rate*), the insert/delete mix, and
//! how strongly the stream skews towards one *hot* peer (commits against a
//! hot peer repeatedly invalidate the artifacts of every peer whose
//! relevant-peer closure contains it, while the rest of the system stays
//! warm).

use crate::error::WorkloadError;
use crate::generator::GeneratedWorkload;
use pdes_core::system::PeerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relalg::database::GroundAtom;
use relalg::{Delta, Tuple};

/// Shape of a synthetic update stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateSpec {
    /// Number of update batches in the stream (each batch commits as one
    /// transaction).
    pub batches: usize,
    /// Ground atoms changed per batch — the stream's mutation rate.
    pub batch_size: usize,
    /// Percentage (0–100) of changes that are insertions; the rest delete
    /// existing base tuples.
    pub insert_percent: u8,
    /// Percentage (0–100) of batches aimed at the hot peer (`P1`, the first
    /// DEC target of the queried peer); the rest round-robin over the other
    /// non-queried peers.
    pub hot_peer_percent: u8,
    /// Random seed (the stream is fully deterministic given the spec).
    pub seed: u64,
}

impl Default for UpdateSpec {
    fn default() -> Self {
        UpdateSpec {
            batches: 10,
            batch_size: 2,
            insert_percent: 70,
            hot_peer_percent: 80,
            seed: 7,
        }
    }
}

/// One batch of the stream: a delta against one peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateBatch {
    /// The targeted peer.
    pub peer: PeerId,
    /// The changes.
    pub delta: Delta,
}

/// Generate a deterministic update stream over a generated workload.
///
/// Insertions create fresh `u_<batch>_<n>` keys (never colliding with the
/// base data); deletions consume the peer's `k_<peer>_<j>` base tuples in
/// order and fall back to insertions once a peer's base data is exhausted.
/// The generated systems carry no local ICs, so every batch commits cleanly
/// through a `Session`.
pub fn generate_updates(
    workload: &GeneratedWorkload,
    spec: &UpdateSpec,
) -> Result<Vec<UpdateBatch>, WorkloadError> {
    for (field, value) in [
        ("insert_percent", spec.insert_percent),
        ("hot_peer_percent", spec.hot_peer_percent),
    ] {
        if value > 100 {
            return Err(WorkloadError::invalid(
                field,
                format!("must be 0–100 (got {value})"),
            ));
        }
    }
    if spec.batch_size == 0 {
        return Err(WorkloadError::invalid(
            "batch_size",
            "must be at least 1 (got 0)".to_string(),
        ));
    }
    let peers: Vec<PeerId> = workload.system.peer_ids().cloned().collect();
    let mutable: Vec<PeerId> = peers
        .iter()
        .filter(|p| **p != workload.queried_peer)
        .cloned()
        .collect();
    if mutable.is_empty() {
        return Err(WorkloadError::invalid(
            "batches",
            "the workload has no peer besides the queried one to mutate".to_string(),
        ));
    }

    let mut rng = StdRng::seed_from_u64(spec.seed);
    // Every generated peer owns exactly one relation; read its name from the
    // peer's schema (peer ids sort lexicographically, so deriving it from an
    // enumeration index would mispair peers and relations beyond 10 peers).
    let relation_of = |p: &PeerId| -> String {
        workload
            .system
            .peer(p)
            .expect("known peer")
            .schema
            .relation_names()
            .next()
            .expect("generated peers own one relation")
            .to_string()
    };
    // Per-peer pool of tuples still available for deletion, drawn from the
    // peer's generation-time instance (each tuple is deleted at most once
    // across the whole stream).
    let mut deletable: Vec<Vec<Tuple>> = peers
        .iter()
        .map(|p| {
            let instance = &workload.system.peer(p).expect("known peer").instance;
            instance
                .relation(&relation_of(p))
                .map(|r| r.iter().cloned().collect())
                .unwrap_or_default()
        })
        .collect();
    let mut cold_cursor = 0usize; // round-robin over the non-hot peers
    let mut out = Vec::with_capacity(spec.batches);

    for batch_idx in 0..spec.batches {
        let hot = rng.gen_range(0..100u8) < spec.hot_peer_percent;
        let peer = if hot || mutable.len() == 1 {
            mutable[0].clone()
        } else {
            cold_cursor += 1;
            mutable[1 + (cold_cursor - 1) % (mutable.len() - 1)].clone()
        };
        let peer_index: usize = peers.iter().position(|p| *p == peer).expect("known peer");
        let relation = relation_of(&peer);

        let mut delta = Delta::empty();
        for n in 0..spec.batch_size {
            let insert = rng.gen_range(0..100u8) < spec.insert_percent;
            if !insert {
                if let Some(tuple) = deletable[peer_index].pop() {
                    delta.deletions.insert(GroundAtom::new(&relation, tuple));
                    continue;
                }
                // Base data exhausted: fall back to an insertion.
            }
            let tuple = Tuple::strs([
                format!("u_{batch_idx}_{n}").as_str(),
                format!("uv_{batch_idx}_{n}").as_str(),
            ]);
            delta.insertions.insert(GroundAtom::new(&relation, tuple));
        }
        out.push(UpdateBatch { peer, delta });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, TrustMix, WorkloadSpec};

    fn tiny_workload() -> GeneratedWorkload {
        generate(&WorkloadSpec {
            peers: 3,
            trust_mix: TrustMix::AllLess,
            ..WorkloadSpec::tiny()
        })
        .unwrap()
    }

    #[test]
    fn streams_are_deterministic() {
        let w = tiny_workload();
        let spec = UpdateSpec::default();
        let a = generate_updates(&w, &spec).unwrap();
        let b = generate_updates(&w, &spec).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.batches);
    }

    #[test]
    fn batches_respect_rate_and_never_touch_the_queried_peer() {
        let w = tiny_workload();
        let spec = UpdateSpec {
            batches: 8,
            batch_size: 3,
            ..UpdateSpec::default()
        };
        let stream = generate_updates(&w, &spec).unwrap();
        for batch in &stream {
            assert_ne!(batch.peer, w.queried_peer);
            assert!(batch.delta.len() <= spec.batch_size);
            assert!(!batch.delta.is_empty());
        }
    }

    #[test]
    fn hot_skew_concentrates_on_p1() {
        let w = tiny_workload();
        let all_hot = UpdateSpec {
            batches: 12,
            hot_peer_percent: 100,
            ..UpdateSpec::default()
        };
        let stream = generate_updates(&w, &all_hot).unwrap();
        assert!(stream.iter().all(|b| b.peer == PeerId::new("P1")));
        let spread = UpdateSpec {
            batches: 12,
            hot_peer_percent: 0,
            ..UpdateSpec::default()
        };
        let stream = generate_updates(&w, &spread).unwrap();
        assert!(stream.iter().any(|b| b.peer == PeerId::new("P2")));
    }

    #[test]
    fn deletions_target_existing_base_tuples() {
        let w = tiny_workload();
        let spec = UpdateSpec {
            batches: 6,
            batch_size: 2,
            insert_percent: 0,
            hot_peer_percent: 100,
            ..UpdateSpec::default()
        };
        let stream = generate_updates(&w, &spec).unwrap();
        let p1 = &w.system.peer(&PeerId::new("P1")).unwrap().instance;
        for batch in &stream {
            for atom in &batch.delta.deletions {
                assert!(p1.holds(&atom.relation, &atom.tuple));
            }
        }
    }

    #[test]
    fn relations_match_their_peers_beyond_ten_peers() {
        // Peer ids sort lexicographically (P0, P1, P10, P11, P2, …), so any
        // index-based peer↔relation pairing breaks at 11+ peers.
        let w = generate(&WorkloadSpec {
            peers: 12,
            tuples_per_relation: 2,
            violations_per_dec: 0,
            trust_mix: TrustMix::AllLess,
            ..WorkloadSpec::tiny()
        })
        .unwrap();
        let stream = generate_updates(
            &w,
            &UpdateSpec {
                batches: 24,
                batch_size: 2,
                insert_percent: 50,
                hot_peer_percent: 0,
                ..UpdateSpec::default()
            },
        )
        .unwrap();
        for batch in &stream {
            let schema = &w.system.peer(&batch.peer).unwrap().schema;
            for atom in batch.delta.insertions.iter().chain(&batch.delta.deletions) {
                assert!(
                    schema.contains(&atom.relation),
                    "batch against {} touches foreign relation {}",
                    batch.peer,
                    atom.relation
                );
            }
        }
    }

    #[test]
    fn malformed_update_specs_are_reported() {
        let w = tiny_workload();
        assert!(generate_updates(
            &w,
            &UpdateSpec {
                insert_percent: 101,
                ..UpdateSpec::default()
            }
        )
        .is_err());
        assert!(generate_updates(
            &w,
            &UpdateSpec {
                batch_size: 0,
                ..UpdateSpec::default()
            }
        )
        .is_err());
    }
}

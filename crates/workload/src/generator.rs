//! Deterministic generation of synthetic P2P systems from a [`WorkloadSpec`].

use crate::error::WorkloadError;
use crate::spec::{Topology, TrustMix, WorkloadSpec};
use constraints::builders::{full_inclusion, key_agreement};
use pdes_core::system::{P2PSystem, PeerId, TrustLevel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relalg::query::Formula;
use relalg::{RelationSchema, Tuple};

/// A generated workload: the system plus the canonical query posed to `P0`.
#[derive(Debug, Clone)]
pub struct GeneratedWorkload {
    /// The generated system.
    pub system: P2PSystem,
    /// The peer that queries are posed to (`P0`).
    pub queried_peer: PeerId,
    /// The canonical query `T0(X, Y)`.
    pub query: Formula,
    /// Answer variables of the canonical query.
    pub free_vars: Vec<String>,
    /// Total number of planted violations across all DECs.
    pub planted_violations: usize,
}

/// Generate a system from a spec. The generation is deterministic: the same
/// spec (including its seed) always produces the same system. A malformed
/// spec is reported as a [`WorkloadError`] rather than aborting the caller
/// (benchmark harnesses sweep many specs and must be able to skip bad ones).
pub fn generate(spec: &WorkloadSpec) -> Result<GeneratedWorkload, WorkloadError> {
    if spec.peers < 2 {
        return Err(WorkloadError::invalid(
            "peers",
            format!("a workload needs at least two peers (got {})", spec.peers),
        ));
    }
    if spec.key_constraint_percent > 100 {
        return Err(WorkloadError::invalid(
            "key_constraint_percent",
            format!("must be 0–100 (got {})", spec.key_constraint_percent),
        ));
    }
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut system = P2PSystem::new();

    let peer_ids: Vec<PeerId> = (0..spec.peers)
        .map(|i| PeerId::new(format!("P{i}")))
        .collect();
    for (i, id) in peer_ids.iter().enumerate() {
        system.add_peer(id.clone()).expect("fresh peer");
        system
            .add_relation(id, RelationSchema::new(format!("T{i}"), &["key", "val"]))
            .expect("fresh relation");
    }

    // Base data: every peer gets `tuples_per_relation` tuples with keys that
    // are unique per peer (no accidental conflicts).
    for (i, id) in peer_ids.iter().enumerate() {
        for j in 0..spec.tuples_per_relation {
            let key = format!("k_{i}_{j}");
            let val = format!("v_{i}_{j}");
            system
                .insert(
                    id,
                    &format!("T{i}"),
                    Tuple::strs([key.as_str(), val.as_str()]),
                )
                .expect("insert base tuple");
        }
    }

    // DEC edges according to the topology.
    let edges: Vec<(usize, usize)> = match spec.topology {
        Topology::Star => (1..spec.peers).map(|i| (0, i)).collect(),
        Topology::Chain => (0..spec.peers - 1).map(|i| (i, i + 1)).collect(),
    };

    let mut planted = 0usize;
    for (edge_idx, (owner_idx, other_idx)) in edges.iter().enumerate() {
        let owner = peer_ids[*owner_idx].clone();
        let other = peer_ids[*other_idx].clone();
        let owner_rel = format!("T{owner_idx}");
        let other_rel = format!("T{other_idx}");

        let level = match spec.trust_mix {
            TrustMix::AllLess => TrustLevel::Less,
            TrustMix::AllSame => TrustLevel::Same,
            TrustMix::Mixed => {
                if edge_idx % 2 == 0 {
                    TrustLevel::Less
                } else {
                    TrustLevel::Same
                }
            }
        };
        system.set_trust(&owner, level, &other).expect("trust");

        let use_key_constraint =
            level == TrustLevel::Same && rng.gen_range(0..100u8) < spec.key_constraint_percent;

        if use_key_constraint {
            // Σ: ∀x y z (T_owner(x, y) ∧ T_other(x, z) → y = z).
            system
                .add_dec(
                    &owner,
                    &other,
                    key_agreement(format!("dec_{edge_idx}"), &owner_rel, &other_rel).unwrap(),
                )
                .expect("dec");
            // Plant violations: shared keys with different values.
            for v in 0..spec.violations_per_dec {
                let key = format!("conflict_{edge_idx}_{v}");
                system
                    .insert(
                        &owner,
                        &owner_rel,
                        Tuple::strs([key.as_str(), "owner_value"]),
                    )
                    .unwrap();
                system
                    .insert(
                        &other,
                        &other_rel,
                        Tuple::strs([key.as_str(), "other_value"]),
                    )
                    .unwrap();
                planted += 1;
            }
        } else {
            // Σ: ∀x y (T_other(x, y) → T_owner(x, y)).
            system
                .add_dec(
                    &owner,
                    &other,
                    full_inclusion(format!("dec_{edge_idx}"), &other_rel, &owner_rel, 2).unwrap(),
                )
                .expect("dec");
            // Plant violations: tuples of the other peer missing at the owner.
            for v in 0..spec.violations_per_dec {
                let key = format!("missing_{edge_idx}_{v}");
                system
                    .insert(
                        &other,
                        &other_rel,
                        Tuple::strs([key.as_str(), "imported_value"]),
                    )
                    .unwrap();
                planted += 1;
            }
            // And some shared tuples that already satisfy the inclusion.
            for s in 0..(spec.tuples_per_relation / 4).max(1) {
                let key = format!("shared_{edge_idx}_{s}");
                let tuple = Tuple::strs([key.as_str(), "shared_value"]);
                system.insert(&owner, &owner_rel, tuple.clone()).unwrap();
                system.insert(&other, &other_rel, tuple).unwrap();
            }
        }
    }

    Ok(GeneratedWorkload {
        system,
        queried_peer: PeerId::new("P0"),
        query: Formula::atom("T0", vec!["X", "Y"]),
        free_vars: vec!["X".to_string(), "Y".to_string()],
        planted_violations: planted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdes_core::{QueryEngine, Strategy};

    #[test]
    fn malformed_specs_are_reported_not_panicked() {
        let too_few = WorkloadSpec {
            peers: 1,
            ..WorkloadSpec::tiny()
        };
        let err = generate(&too_few).unwrap_err();
        assert!(err.to_string().contains("peers"));
        let bad_percent = WorkloadSpec {
            key_constraint_percent: 150,
            ..WorkloadSpec::tiny()
        };
        let err = generate(&bad_percent).unwrap_err();
        assert!(err.to_string().contains("key_constraint_percent"));
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::tiny();
        let a = generate(&spec).unwrap();
        let b = generate(&spec).unwrap();
        assert_eq!(
            a.system.global_instance().unwrap(),
            b.system.global_instance().unwrap()
        );
        assert_eq!(a.planted_violations, b.planted_violations);
    }

    #[test]
    fn different_seeds_can_differ_in_constraint_choice() {
        let mut spec = WorkloadSpec {
            trust_mix: TrustMix::AllSame,
            key_constraint_percent: 50,
            ..WorkloadSpec::tiny()
        };
        spec.seed = 1;
        let a = generate(&spec).unwrap();
        spec.seed = 7;
        let b = generate(&spec).unwrap();
        // Both are valid systems with the same number of peers.
        assert_eq!(a.system.peer_count(), b.system.peer_count());
    }

    #[test]
    fn generated_star_workload_has_expected_structure() {
        let spec = WorkloadSpec {
            peers: 4,
            ..WorkloadSpec::tiny()
        };
        let w = generate(&spec).unwrap();
        assert_eq!(w.system.peer_count(), 4);
        assert_eq!(w.system.decs().len(), 3);
        assert_eq!(w.system.trust().len(), 3);
        assert_eq!(w.planted_violations, 3);
    }

    #[test]
    fn chain_workload_links_consecutive_peers() {
        let spec = WorkloadSpec {
            peers: 3,
            topology: Topology::Chain,
            ..WorkloadSpec::tiny()
        };
        let w = generate(&spec).unwrap();
        let p1 = PeerId::new("P1");
        assert_eq!(w.system.decs_of(&p1).len(), 1);
    }

    #[test]
    fn all_mechanisms_agree_on_tiny_inclusion_workload() {
        let spec = WorkloadSpec {
            trust_mix: TrustMix::AllLess,
            ..WorkloadSpec::tiny()
        };
        let w = generate(&spec).unwrap();
        let engine = QueryEngine::new(w.system.clone());
        let semantic = engine
            .answer_with(Strategy::Naive, &w.queried_peer, &w.query, &w.free_vars)
            .unwrap();
        let rewriting = engine
            .answer_with(Strategy::Rewriting, &w.queried_peer, &w.query, &w.free_vars)
            .unwrap();
        let asp = engine
            .answer_with(Strategy::Asp, &w.queried_peer, &w.query, &w.free_vars)
            .unwrap();
        assert_eq!(semantic.tuples, rewriting.tuples);
        assert_eq!(semantic.tuples, asp.tuples);
        // Imported tuples are part of the answers.
        assert!(semantic.tuples.iter().any(|t| t
            .get(0)
            .unwrap()
            .to_string()
            .starts_with("missing_")));
    }

    #[test]
    fn all_mechanisms_agree_on_tiny_key_conflict_workload() {
        let spec = WorkloadSpec {
            trust_mix: TrustMix::AllSame,
            key_constraint_percent: 100,
            ..WorkloadSpec::tiny()
        };
        let w = generate(&spec).unwrap();
        let engine = QueryEngine::new(w.system.clone());
        let semantic = engine
            .answer_with(Strategy::Naive, &w.queried_peer, &w.query, &w.free_vars)
            .unwrap();
        let asp = engine
            .answer_with(Strategy::Asp, &w.queried_peer, &w.query, &w.free_vars)
            .unwrap();
        assert_eq!(semantic.tuples, asp.tuples);
        // The conflicting tuple is dropped from the certain answers.
        assert!(!semantic.tuples.iter().any(|t| t
            .get(0)
            .unwrap()
            .to_string()
            .starts_with("conflict_")));
    }
}

//! Defect-injection tests: every diagnostic code fires on a minimal bad
//! specification and stays silent on the shipped examples, and the
//! analyzer's rewritability verdict is the engine's `Strategy::Auto`
//! decision.

use constraints::{AtomPattern, Constraint, ConstraintHead};
use datalog::{Atom, BodyItem, Program, Rule};
use pdes_analyze::{
    check_program, classify_rewritability, codes, lint_source, Location, RewriteVerdict, Severity,
};
use pdes_core::engine::{QueryEngine, Strategy, StrategyKind};
use pdes_core::pca::vars;
use pdes_core::system::{example1_system, PeerId};
use pdes_core::CoreError;
use relalg::query::{Formula, Term};

// ---------------------------------------------------------------------
// Schema & safety defects (PDES-A00x).
// ---------------------------------------------------------------------

#[test]
fn unknown_relation_fires_a001() {
    let report = lint_source(
        "peer A\npeer B\nrelation A R(k, v)\nrelation B S(k, v)\n\
         trust A less B\ndec d A B: Nope(X, Y) -> R(X, Y)\n",
    );
    assert!(
        report.has_code(codes::UNKNOWN_RELATION),
        "{}",
        report.render()
    );
    assert_eq!(report.error_count(), 1);
}

#[test]
fn arity_mismatch_fires_a002() {
    let report = lint_source(
        "peer A\npeer B\nrelation A R(k, v)\nrelation B S(k, v)\n\
         trust A less B\ndec d A B: S(X, Y, Z) -> R(X, Y)\n",
    );
    assert!(
        report.has_code(codes::ARITY_MISMATCH),
        "{}",
        report.render()
    );
}

#[test]
fn unsafe_constraint_fires_a003() {
    // The `Constraint` fields are public, so an ill-formed constraint that
    // `Constraint::new` would refuse can still reach the batch analyzer.
    let mut system = example1_system();
    let unsafe_ic = Constraint {
        name: "unsafe".into(),
        body: vec![AtomPattern::new("R1", vec![Term::var("X"), Term::var("Y")])],
        conditions: vec![],
        head: ConstraintHead::Equality(Term::var("Y"), Term::var("Z")), // Z unbound
    };
    system
        .add_local_ic_unchecked(&PeerId::new("P1"), unsafe_ic)
        .unwrap();
    let report = system.analyze();
    let found = report.with_code(codes::UNSAFE_CONSTRAINT);
    assert_eq!(found.len(), 1, "{}", report.render());
    assert_eq!(found[0].severity, Severity::Error);
    assert!(matches!(&found[0].location, Location::Ic { peer, .. } if peer.to_string() == "P1"));
}

#[test]
fn unsafe_rule_fires_a004() {
    let mut program = Program::new();
    program.add_rule(Rule::new(
        vec![Atom::new("p", &["X", "Y"])],
        vec![BodyItem::Pos(Atom::new("q", &["X"]))], // Y unbound
    ));
    let diags = check_program(&Location::System, &program);
    assert!(diags.iter().any(|d| d.code == codes::UNSAFE_RULE));
}

// ---------------------------------------------------------------------
// Negation defects (PDES-A10x).
// ---------------------------------------------------------------------

#[test]
fn odd_negative_loop_fires_a101_with_witness() {
    let mut program = Program::new();
    // p :- q.  q :- not p.  — an odd loop through a positive edge.
    program.add_rule(Rule::new(
        vec![Atom::new("p", &["a"])],
        vec![BodyItem::Pos(Atom::new("q", &["a"]))],
    ));
    program.add_rule(Rule::new(
        vec![Atom::new("q", &["a"])],
        vec![BodyItem::Naf(Atom::new("p", &["a"]))],
    ));
    let diags = check_program(&Location::System, &program);
    let odd: Vec<_> = diags
        .iter()
        .filter(|d| d.code == codes::ODD_NEGATIVE_LOOP)
        .collect();
    assert_eq!(odd.len(), 1);
    let cycle = odd[0]
        .payload
        .iter()
        .find(|(k, _)| k == "cycle")
        .map(|(_, v)| v.as_str())
        .unwrap();
    assert_eq!(cycle, "p,q");
}

#[test]
fn even_negative_loop_fires_a102_only() {
    let mut program = Program::new();
    // p :- not q.  q :- not p.  — a stable (even) loop.
    program.add_rule(Rule::new(
        vec![Atom::new("p", &["a"])],
        vec![BodyItem::Naf(Atom::new("q", &["a"]))],
    ));
    program.add_rule(Rule::new(
        vec![Atom::new("q", &["a"])],
        vec![BodyItem::Naf(Atom::new("p", &["a"]))],
    ));
    let diags = check_program(&Location::System, &program);
    assert!(diags.iter().any(|d| d.code == codes::UNSTRATIFIED));
    assert!(!diags.iter().any(|d| d.code == codes::ODD_NEGATIVE_LOOP));
}

#[test]
fn complementary_facts_fire_a103() {
    let mut program = Program::new();
    program.add_rule(Rule::fact(Atom::new("p", &["a"])));
    let mut negated = Atom::new("p", &["a"]);
    negated.strong_neg = true;
    program.add_rule(Rule::fact(negated));
    let diags = check_program(&Location::System, &program);
    assert!(diags.iter().any(|d| d.code == codes::CLASSICAL_CLASH));
}

// ---------------------------------------------------------------------
// Topology defects (PDES-A20x).
// ---------------------------------------------------------------------

#[test]
fn dec_cycle_fires_a201() {
    let report = lint_source(
        "peer A\npeer B\nrelation A R(k, v)\nrelation B S(k, v)\n\
         trust A less B\ntrust B less A\n\
         dec dab A B: S(X, Y) -> R(X, Y)\ndec dba B A: R(X, Y) -> S(X, Y)\n",
    );
    let cycles = report.with_code(codes::DEC_CYCLE);
    assert_eq!(cycles.len(), 1, "{}", report.render());
    let witness = cycles[0]
        .payload
        .iter()
        .find(|(k, _)| k == "cycle")
        .map(|(_, v)| v.as_str())
        .unwrap();
    assert_eq!(witness, "A,B");
    // Mutual `less` is also a trust smell.
    assert!(report.has_code(codes::TRUST_ASYMMETRY));
}

#[test]
fn isolated_peer_fires_a202() {
    let report = lint_source(
        "peer A\npeer B\npeer C\nrelation A R(k, v)\nrelation B S(k, v)\n\
         relation C U(k, v)\ntrust A less B\ndec d A B: S(X, Y) -> R(X, Y)\n",
    );
    let isolated = report.with_code(codes::ISOLATED_PEER);
    assert_eq!(isolated.len(), 1, "{}", report.render());
    assert!(matches!(&isolated[0].location, Location::Peer(p) if p.to_string() == "C"));
}

#[test]
fn empty_schema_fires_a203() {
    let report = lint_source("peer A\npeer B\nrelation B S(k, v)\n");
    assert!(report.has_code(codes::EMPTY_SCHEMA), "{}", report.render());
}

#[test]
fn dangling_trust_fires_a204() {
    let report =
        lint_source("peer A\npeer B\nrelation A R(k, v)\nrelation B S(k, v)\ntrust A less B\n");
    assert!(
        report.has_code(codes::DANGLING_TRUST),
        "{}",
        report.render()
    );
}

#[test]
fn trust_asymmetry_fires_a205() {
    let report = lint_source(
        "peer A\npeer B\nrelation A R(k, v)\nrelation B S(k, v)\n\
         trust A less B\ntrust B same A\ndec d A B: S(X, Y) -> R(X, Y)\n",
    );
    assert!(
        report.has_code(codes::TRUST_ASYMMETRY),
        "{}",
        report.render()
    );
}

#[test]
fn untrusted_dec_fires_a206() {
    let report = lint_source(
        "peer A\npeer B\nrelation A R(k, v)\nrelation B S(k, v)\n\
         dec d A B: S(X, Y) -> R(X, Y)\n",
    );
    assert!(report.has_code(codes::UNTRUSTED_DEC), "{}", report.render());
}

#[test]
fn one_giant_component_fires_a207() {
    // A—B—C chained by DECs: one closure-connected component spanning all
    // peers, so closure-based sharding cannot spread them.
    let report = lint_source(
        "peer A\npeer B\npeer C\n\
         relation A R(k, v)\nrelation B S(k, v)\nrelation C T(k, v)\n\
         trust A less B\ntrust B less C\n\
         dec d1 A B: S(X, Y) -> R(X, Y)\ndec d2 B C: T(X, Y) -> S(X, Y)\n",
    );
    assert!(
        report.has_code(codes::SHARDING_HOSTILE),
        "{}",
        report.render()
    );
}

#[test]
fn split_components_do_not_fire_a207() {
    // Two disjoint DEC pairs: two components, sharding can separate them.
    let report = lint_source(
        "peer A\npeer B\npeer C\npeer D\n\
         relation A R(k, v)\nrelation B S(k, v)\n\
         relation C T(k, v)\nrelation D U(k, v)\n\
         trust A less B\ntrust C less D\n\
         dec d1 A B: S(X, Y) -> R(X, Y)\ndec d2 C D: U(X, Y) -> T(X, Y)\n",
    );
    assert!(
        !report.has_code(codes::SHARDING_HOSTILE),
        "{}",
        report.render()
    );
}

// ---------------------------------------------------------------------
// The shipped examples are defect-free.
// ---------------------------------------------------------------------

#[test]
fn shipped_example_specs_are_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs");
    let mut checked = 0;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "pds"))
        .collect();
    entries.sort();
    for path in entries {
        let source = std::fs::read_to_string(&path).unwrap();
        let report = lint_source(&source);
        assert!(
            report.is_clean(),
            "{} has errors:\n{}",
            path.display(),
            report.render()
        );
        assert_eq!(report.warning_count(), 0, "{}", path.display());
        checked += 1;
    }
    assert!(
        checked >= 4,
        "expected the shipped spec files, found {checked}"
    );
}

// ---------------------------------------------------------------------
// The analyzer IS the Strategy::Auto decision.
// ---------------------------------------------------------------------

#[test]
fn classification_matches_engine_resolution_across_the_matrix() {
    for spec in pdes_analyze::workload_matrix() {
        let generated = workload::generate(&spec).unwrap();
        let engine = QueryEngine::builder(generated.system.clone()).build();
        for peer in generated.system.peer_ids() {
            let verdict = classify_rewritability(&generated.system, peer).unwrap();
            let query = Formula::atom(
                generated
                    .system
                    .peer(peer)
                    .unwrap()
                    .schema
                    .relation_names()
                    .next()
                    .unwrap(),
                vec!["X", "Y"],
            );
            let (kind, reason) = engine.resolve_explained(Strategy::Auto, peer, &query);
            match verdict {
                RewriteVerdict::Rewritable => {
                    assert_eq!(
                        kind,
                        StrategyKind::Rewriting,
                        "workload {spec}, peer {peer}"
                    );
                    assert_eq!(reason, None);
                }
                RewriteVerdict::NotRewritable { code, .. } => {
                    assert_eq!(kind, StrategyKind::Asp, "workload {spec}, peer {peer}");
                    assert_eq!(reason, Some(code));
                }
            }
        }
    }
}

#[test]
fn auto_reason_reaches_the_answer_stats() {
    let source = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs/local_fd.pds"),
    )
    .unwrap();
    let parsed = dsl::parse(&source).unwrap();
    let engine = QueryEngine::builder(parsed.system).build();
    let peer = PeerId::new("A");
    let query = Formula::atom("R", vec!["X", "Y"]);
    let answers = engine.answer(&peer, &query, &vars(&["X", "Y"])).unwrap();
    assert_eq!(answers.stats.strategy, StrategyKind::Asp);
    assert_eq!(answers.stats.auto_reason, Some(codes::REWRITE_LOCAL_ICS));

    // A rewritable peer carries no reason.
    let engine = QueryEngine::builder(example1_system()).build();
    let answers = engine
        .answer(
            &PeerId::new("P1"),
            &Formula::atom("R1", vec!["X", "Y"]),
            &vars(&["X", "Y"]),
        )
        .unwrap();
    assert_eq!(answers.stats.strategy, StrategyKind::Rewriting);
    assert_eq!(answers.stats.auto_reason, None);
}

#[test]
fn query_outside_the_positive_fragment_reports_a304() {
    let engine = QueryEngine::builder(example1_system()).build();
    let query = Formula::Not(Box::new(Formula::atom("R1", vec!["X", "Y"])));
    let (kind, reason) = engine.resolve_explained(Strategy::Auto, &PeerId::new("P1"), &query);
    assert_eq!(kind, StrategyKind::Asp);
    assert_eq!(reason, Some(codes::REWRITE_QUERY_FRAGMENT));
}

// ---------------------------------------------------------------------
// Strict analysis gates engine construction.
// ---------------------------------------------------------------------

#[test]
fn strict_analysis_refuses_defective_systems() {
    let mut system = example1_system();
    let bad = Constraint::new(
        "bad",
        vec![AtomPattern::new("Nope", vec![Term::var("X")])],
        vec![],
        ConstraintHead::False,
    )
    .unwrap();
    system
        .add_dec_unchecked(&PeerId::new("P1"), &PeerId::new("P2"), bad)
        .unwrap();

    // Non-strict construction succeeds and keeps the report inspectable.
    let engine = QueryEngine::builder(system.clone()).build();
    assert!(engine.analysis_report().has_code(codes::UNKNOWN_RELATION));

    // Strict construction refuses.
    let err = match QueryEngine::builder(system)
        .strict_analysis(true)
        .try_build()
    {
        Err(e) => e,
        Ok(_) => panic!("strict analysis accepted a defective system"),
    };
    match err {
        CoreError::AnalysisRejected { errors, report } => {
            assert_eq!(errors, 1);
            assert!(report.contains(codes::UNKNOWN_RELATION));
        }
        other => panic!("expected AnalysisRejected, got {other}"),
    }
}

#[test]
fn strict_analysis_accepts_clean_systems() {
    let engine = QueryEngine::builder(example1_system())
        .strict_analysis(true)
        .try_build()
        .unwrap();
    assert!(engine.analysis_report().is_clean());
}

//! `pdes-lint` — static analysis of peer specifications from the command
//! line.
//!
//! Usage:
//!
//! ```text
//! pdes-lint [OPTIONS] [FILE.pds ...]
//!
//!   --all-examples        lint every .pds file under the examples dir
//!   --examples-dir DIR    where to look for examples (default examples/specs)
//!   --workload-matrix     lint the deterministic generated workload matrix
//!   --deny-warnings       exit non-zero on warnings as well as errors
//!   --quiet               print only the per-target summary lines
//! ```
//!
//! Exit status: `0` when every target is clean, `1` when any target has
//! error-severity diagnostics (or warnings under `--deny-warnings`), `2` on
//! usage or I/O errors.

use pdes_analyze::{lint_source, lint_workload, workload_matrix, Report, Severity};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    files: Vec<PathBuf>,
    all_examples: bool,
    examples_dir: PathBuf,
    matrix: bool,
    deny_warnings: bool,
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        files: Vec::new(),
        all_examples: false,
        examples_dir: PathBuf::from("examples/specs"),
        matrix: false,
        deny_warnings: false,
        quiet: false,
    };
    let mut iter = args.iter().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--all-examples" => options.all_examples = true,
            "--examples-dir" => {
                let dir = iter
                    .next()
                    .ok_or_else(|| "--examples-dir needs a directory".to_string())?;
                options.examples_dir = PathBuf::from(dir);
            }
            "--workload-matrix" => options.matrix = true,
            "--deny-warnings" => options.deny_warnings = true,
            "--quiet" => options.quiet = true,
            "--help" | "-h" => {
                return Err("usage: pdes-lint [--all-examples] [--examples-dir DIR] \
                     [--workload-matrix] [--deny-warnings] [--quiet] [FILE.pds ...]"
                    .to_string())
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}` (try --help)"))
            }
            file => options.files.push(PathBuf::from(file)),
        }
    }
    if options.files.is_empty() && !options.all_examples && !options.matrix {
        return Err(
            "nothing to lint: pass FILE.pds, --all-examples or --workload-matrix \
             (try --help)"
                .to_string(),
        );
    }
    Ok(options)
}

/// Collect every `.pds` file under `dir` (sorted for deterministic output).
fn collect_examples(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "pds"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no .pds files under {}", dir.display()));
    }
    Ok(files)
}

/// Print one target's report; true when it fails the lint.
fn report_target(name: &str, report: &Report, options: &Options) -> bool {
    let errors = report.error_count();
    let warnings = report.warning_count();
    let infos = report.count(Severity::Info);
    let failed = errors > 0 || (options.deny_warnings && warnings > 0);
    let status = if failed { "FAIL" } else { "ok" };
    println!("{status:>4}  {name}: {errors} error(s), {warnings} warning(s), {infos} info(s)");
    if !options.quiet {
        for diagnostic in report.diagnostics() {
            println!("      {diagnostic}");
        }
    }
    failed
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("pdes-lint: {message}");
            return ExitCode::from(2);
        }
    };

    let mut targets: Vec<PathBuf> = options.files.clone();
    if options.all_examples {
        match collect_examples(&options.examples_dir) {
            Ok(files) => targets.extend(files),
            Err(message) => {
                eprintln!("pdes-lint: {message}");
                return ExitCode::from(2);
            }
        }
    }

    let mut failed = false;
    for path in &targets {
        let source = match std::fs::read_to_string(path) {
            Ok(source) => source,
            Err(e) => {
                eprintln!("pdes-lint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let report = lint_source(&source);
        failed |= report_target(&path.display().to_string(), &report, &options);
    }

    if options.matrix {
        for spec in workload_matrix() {
            let report = lint_workload(&spec);
            failed |= report_target(&format!("workload[{spec}]"), &report, &options);
        }
    }

    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

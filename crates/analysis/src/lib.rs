//! # pdes-analyze — static diagnostics over peer specifications
//!
//! The user-facing surface of the static analyzer that lives in
//! [`pdes_core::analyze`] (re-exported here in full): load a system from a
//! `.pds` file, a DSL string, or a synthetic [`WorkloadSpec`], run every
//! analysis pass, and get a [`Report`] of [`Diagnostic`]s with stable codes.
//!
//! ## Diagnostic codes
//!
//! | Code | Severity | Meaning |
//! |------|----------|---------|
//! | `PDES-A000` | error | specification file does not parse |
//! | `PDES-A001` | error | constraint references an undeclared relation |
//! | `PDES-A002` | error | constraint arity differs from the declared schema |
//! | `PDES-A003` | error | unsafe constraint (empty body / unbound variable) |
//! | `PDES-A004` | error | unsafe rule in a specification program |
//! | `PDES-A005` | warning | constraint mentions a non-endpoint peer's relation |
//! | `PDES-A006` | error | specification program generation failed |
//! | `PDES-A101` | warning | odd negative loop in a specification program |
//! | `PDES-A102` | info | program not stratified (even loops only) |
//! | `PDES-A103` | warning | complementary classically-negated facts |
//! | `PDES-A201` | warning | cycle in the DEC network |
//! | `PDES-A202` | info | peer participates in no DEC |
//! | `PDES-A203` | warning | peer declares no relations |
//! | `PDES-A204` | warning | trust entry between peers that share no DEC |
//! | `PDES-A205` | warning | asymmetric (or mutually deferring) trust |
//! | `PDES-A206` | warning | DEC without a matching trust declaration |
//! | `PDES-A207` | info | one closure-connected component (sharding-hostile) |
//! | `PDES-A301` | info | not rewritable: peer has local ICs |
//! | `PDES-A302` | info | not rewritable: less-trusted DEC is not a full inclusion |
//! | `PDES-A303` | info | not rewritable: same-trusted DEC is not key agreement |
//! | `PDES-A304` | — | `Auto` fell back to ASP for the *query* (per answer only) |
//!
//! ## The `pdes-lint` CLI
//!
//! ```text
//! pdes-lint FILE.pds …            lint specification files
//! pdes-lint --all-examples        lint every .pds under examples/specs/
//! pdes-lint --workload-matrix     lint the generated workload matrix
//! pdes-lint --deny-warnings …     exit non-zero on warnings too
//! ```
//!
//! Exit status: `0` clean, `1` diagnostics at the denied severity, `2`
//! usage or I/O error.

#![warn(missing_docs)]

pub use pdes_core::analyze::{
    check_constraint, check_program, classify_rewritability, code_for_error, codes, Diagnostic,
    Location, Report, RewriteVerdict, Severity,
};
use pdes_core::system::P2PSystem;
use workload::{generate, Topology, TrustMix, WorkloadSpec};

/// Run every static-analysis pass over an already-constructed system
/// (thin alias for [`P2PSystem::analyze`], so CLI and library callers read
/// the same way).
pub fn lint_system(system: &P2PSystem) -> Report {
    system.analyze()
}

/// Parse a `.pds` document and analyze the resulting system. Parse failures
/// become a single error diagnostic — under the construction-time code of
/// the underlying finding when there is one ([`DslError::code`]), under
/// [`codes::PARSE`] otherwise — so `pdes-lint` reports eager-validation
/// failures and batch-analysis findings uniformly.
///
/// The library entry point behind `pdes-lint FILE.pds`:
///
/// ```
/// use pdes_analyze::lint_source;
///
/// let report = lint_source(
///     "peer P0\n\
///      peer P1\n\
///      relation P0 T0(k, v)\n\
///      relation P1 T1(k, v)\n\
///      fact T1(1, a)\n\
///      trust P0 less P1\n\
///      dec d01 P0 P1: T1(X, Y) -> T0(X, Y)\n",
/// );
/// assert!(report.is_clean());
///
/// let broken = lint_source("peer P0\nfact Ghost(1)\n");
/// assert!(broken.error_count() > 0);
/// ```
///
/// [`DslError::code`]: dsl::DslError
pub fn lint_source(source: &str) -> Report {
    match dsl::parse(source) {
        Ok(parsed) => parsed.system.analyze(),
        Err(e) => Report::from_diagnostics(vec![Diagnostic {
            code: e.code.unwrap_or(codes::PARSE),
            severity: Severity::Error,
            location: Location::System,
            message: e.to_string(),
            payload: vec![("line".into(), e.line.to_string())],
        }]),
    }
}

/// Generate a synthetic workload and analyze its system. Generation
/// failures (malformed specs) become a single [`codes::SPEC_GENERATION`]
/// error diagnostic.
pub fn lint_workload(spec: &WorkloadSpec) -> Report {
    match generate(spec) {
        Ok(generated) => generated.system.analyze(),
        Err(e) => Report::from_diagnostics(vec![Diagnostic {
            code: codes::SPEC_GENERATION,
            severity: Severity::Error,
            location: Location::System,
            message: format!("workload generation failed: {e}"),
            payload: Vec::new(),
        }]),
    }
}

/// The deterministic workload matrix `pdes-lint --workload-matrix` (and CI)
/// lints: every topology × trust mix, with and without key-agreement DECs,
/// at two sizes. Every spec in the matrix must analyze error-free.
pub fn workload_matrix() -> Vec<WorkloadSpec> {
    let mut specs = Vec::new();
    for topology in [Topology::Star, Topology::Chain] {
        for trust_mix in [TrustMix::AllLess, TrustMix::AllSame, TrustMix::Mixed] {
            for key_constraint_percent in [0, 100] {
                for peers in [2, 4] {
                    specs.push(WorkloadSpec {
                        peers,
                        tuples_per_relation: 8,
                        violations_per_dec: 1,
                        topology,
                        trust_mix,
                        key_constraint_percent,
                        seed: 7,
                    });
                }
            }
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_reports_parse_failures_under_a000() {
        let report = lint_source("peer\n");
        assert_eq!(report.error_count(), 1);
        assert!(report.has_code(codes::PARSE));
    }

    #[test]
    fn lint_source_reports_eager_validation_under_the_analyzer_code() {
        let report = lint_source(
            "peer P1\npeer P2\nrelation P1 R1(x, y)\nrelation P2 R2(x, y)\n\
             trust P1 less P2\ndec d P1 P2: R2(X, Y, Z) -> R1(X, Y)\n",
        );
        assert!(
            report.has_code(codes::ARITY_MISMATCH),
            "{}",
            report.render()
        );
    }

    #[test]
    fn workload_matrix_is_clean() {
        for spec in workload_matrix() {
            let report = lint_workload(&spec);
            assert!(
                report.is_clean(),
                "workload {spec} has errors:\n{}",
                report.render()
            );
        }
    }
}

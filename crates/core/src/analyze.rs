//! Static analysis of peer specifications: structured diagnostics over a
//! [`P2PSystem`], its DECs, trust relation, local ICs and the generated
//! specification programs.
//!
//! The paper's semantics puts hard structural preconditions on peer
//! specifications — rule safety, stratification and odd-negative-loop
//! handling, the rewritable DEC class behind
//! [`crate::engine::Strategy::Auto`], acyclicity of the DEC network — which
//! historically surfaced only at grounding or solve time, or were folded
//! silently into an unexplained strategy choice. This module makes them
//! checkable *before any query runs*:
//!
//! * [`P2PSystem::analyze`] runs every pass and returns a [`Report`] of
//!   [`Diagnostic`]s with stable codes (`PDES-A001`…), severities and
//!   machine-readable payloads;
//! * [`classify_rewritability`] is the extracted `Strategy::Auto` decision:
//!   the engine consumes it (see [`crate::engine::QueryEngine::resolve`]) and
//!   every non-rewritable verdict carries its diagnostic code, surfaced on
//!   [`crate::engine::EngineStats::auto_reason`];
//! * [`check_constraint`] and [`check_program`] are the reusable pass
//!   primitives, public so the `pdes-analyze` crate (and its defect-injection
//!   tests) can drive them directly.
//!
//! The user-facing surface — the `pdes-lint` CLI, DSL/workload loading and
//! the crate-level docs with the full code table — lives in the downstream
//! `pdes-analyze` crate, which re-exports everything here. The passes
//! themselves live in `pdes-core` so the engine can consume the same
//! classification without a dependency cycle.

use crate::asp::annotated_program;
use crate::error::CoreError;
use crate::rewriting;
use crate::system::{P2PSystem, PeerId, TrustLevel};
use crate::Result;
use constraints::Constraint;
use datalog::PredicateGraph;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The stable diagnostic codes, grouped by pass.
///
/// `A0xx` — schema & safety (errors), `A1xx` — negation analysis, `A2xx` —
/// DEC-network topology, `A3xx` — rewritability classification.
pub mod codes {
    /// A specification file does not parse / load at all.
    pub const PARSE: &str = "PDES-A000";
    /// A constraint references a relation no peer declares.
    pub const UNKNOWN_RELATION: &str = "PDES-A001";
    /// A constraint atom's arity differs from the declared schema.
    pub const ARITY_MISMATCH: &str = "PDES-A002";
    /// A constraint is unsafe (empty body, or a condition / equality-head
    /// variable unbound in the body).
    pub const UNSAFE_CONSTRAINT: &str = "PDES-A003";
    /// A peer's specification program contains an unsafe rule.
    pub const UNSAFE_RULE: &str = "PDES-A004";
    /// A DEC mentions a relation owned by neither endpoint (or a local IC
    /// mentions another peer's relation).
    pub const FOREIGN_RELATION: &str = "PDES-A005";
    /// Generating a peer's specification program failed outright.
    pub const SPEC_GENERATION: &str = "PDES-A006";
    /// A specification program has a cycle with an odd number of negative
    /// edges (atoms can become unsupportable).
    pub const ODD_NEGATIVE_LOOP: &str = "PDES-A101";
    /// A specification program is not stratified (even recursion through
    /// negation; resolved by stable-model search, reported for visibility).
    pub const UNSTRATIFIED: &str = "PDES-A102";
    /// Complementary classically-negated facts `p(ā)` and `-p(ā)`.
    pub const CLASSICAL_CLASH: &str = "PDES-A103";
    /// The DEC network has a cycle among peers.
    pub const DEC_CYCLE: &str = "PDES-A201";
    /// A peer participates in no DEC at all (isolated from the exchange).
    pub const ISOLATED_PEER: &str = "PDES-A202";
    /// A peer declares no relations.
    pub const EMPTY_SCHEMA: &str = "PDES-A203";
    /// A trust entry between peers that share no DEC in either direction.
    pub const DANGLING_TRUST: &str = "PDES-A204";
    /// Asymmetric (or mutually deferring) trust between two peers.
    pub const TRUST_ASYMMETRY: &str = "PDES-A205";
    /// A DEC whose owner declares no trust towards the other peer (the
    /// semantics ignores such DECs).
    pub const UNTRUSTED_DEC: &str = "PDES-A206";
    /// The whole DEC network is one closure-connected component: every
    /// peer is (transitively) relevant to every other, so closure-based
    /// sharding degenerates to a single shard (sharding-hostile topology).
    pub const SHARDING_HOSTILE: &str = "PDES-A207";
    /// Not rewritable: the peer has local integrity constraints.
    pub const REWRITE_LOCAL_ICS: &str = "PDES-A301";
    /// Not rewritable: a DEC towards a more-trusted peer is not a full
    /// inclusion into one of the peer's relations.
    pub const REWRITE_NOT_INCLUSION: &str = "PDES-A302";
    /// Not rewritable: a DEC towards a same-trusted peer is not a binary
    /// key-agreement constraint.
    pub const REWRITE_NOT_KEY_AGREEMENT: &str = "PDES-A303";
    /// `Strategy::Auto` fell back to ASP because the *query* is outside the
    /// positive existential fragment (per query, never in a [`Report`](super::Report)).
    pub const REWRITE_QUERY_FRAGMENT: &str = "PDES-A304";
}

/// Severity of a [`Diagnostic`]. Ordered most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The specification is ill-formed; answering over it is unsound or
    /// will fail. Errors make [`Report::is_clean`] false and are what
    /// `strict_analysis` / `pdes-lint` refuse on.
    Error,
    /// Suspicious but answerable (e.g. a DEC cycle, trust asymmetry).
    Warning,
    /// Explanatory (e.g. why `Strategy::Auto` picks ASP over rewriting).
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
            Severity::Info => write!(f, "info"),
        }
    }
}

/// Where a [`Diagnostic`] points.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Location {
    /// The system as a whole (or a source file that failed to load).
    System,
    /// One peer (its schema, instance or specification program).
    Peer(PeerId),
    /// One DEC, identified by its index in [`P2PSystem::decs`] order.
    Dec {
        /// The DEC's owner.
        owner: PeerId,
        /// The other peer of the DEC.
        other: PeerId,
        /// Index into [`P2PSystem::decs`].
        index: usize,
        /// The constraint's name.
        name: String,
    },
    /// One local integrity constraint of a peer.
    Ic {
        /// The peer declaring the IC.
        peer: PeerId,
        /// The constraint's name.
        name: String,
    },
    /// One trust entry `who → whom`.
    Trust {
        /// The trusting peer.
        who: PeerId,
        /// The trusted peer.
        whom: PeerId,
    },
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::System => write!(f, "system"),
            Location::Peer(p) => write!(f, "peer {p}"),
            Location::Dec {
                owner,
                other,
                index,
                name,
            } => write!(f, "dec `{name}` #{index} ({owner} -> {other})"),
            Location::Ic { peer, name } => write!(f, "ic `{name}` ({peer})"),
            Location::Trust { who, whom } => write!(f, "trust {who} -> {whom}"),
        }
    }
}

/// One finding of the static analyzer: a stable code, a severity, a
/// location, a one-line explanation and a machine-readable payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (one of [`codes`]), safe to match on across releases.
    pub code: &'static str,
    /// How bad it is.
    pub severity: Severity,
    /// What it points at.
    pub location: Location,
    /// One-line human-readable explanation.
    pub message: String,
    /// Machine-readable key/value payload (cycle witnesses, arities, …).
    pub payload: Vec<(String, String)>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.location, self.message
        )
    }
}

/// The outcome of [`P2PSystem::analyze`]: every diagnostic of every pass,
/// in pass order (schema/safety, negation, topology, rewritability).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Wrap an explicit diagnostic list (used by loaders that map parse
    /// failures onto diagnostics).
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> Self {
        Report { diagnostics }
    }

    /// All diagnostics, in emission order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of diagnostics at the given severity.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// True when the report has no *errors* (warnings and infos allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// True when some diagnostic carries the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The diagnostics carrying the given code.
    pub fn with_code(&self, code: &str) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.code == code).collect()
    }

    /// Render every diagnostic, one per line, most severe first.
    pub fn render(&self) -> String {
        let mut sorted: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        sorted.sort_by_key(|d| d.severity);
        sorted
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    fn extend(&mut self, diagnostics: Vec<Diagnostic>) {
        self.diagnostics.extend(diagnostics);
    }
}

/// The rewritability classification of one peer: the extracted
/// [`crate::engine::Strategy::Auto`] decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteVerdict {
    /// The peer's DEC/trust/IC configuration is in the Example 2 fragment:
    /// FO rewriting answers positive existential queries exactly.
    Rewritable,
    /// The configuration falls outside the fragment; `Auto` uses ASP.
    NotRewritable {
        /// The diagnostic code of the disqualifying reason
        /// ([`codes::REWRITE_LOCAL_ICS`] / [`codes::REWRITE_NOT_INCLUSION`] /
        /// [`codes::REWRITE_NOT_KEY_AGREEMENT`]).
        code: &'static str,
        /// Human-readable explanation naming the offending IC/DEC.
        reason: String,
    },
}

/// Classify whether `peer`'s DEC/trust/IC configuration admits the
/// first-order rewriting mechanism (pass 4 of the analyzer, and the
/// peer-side half of the `Strategy::Auto` decision — the query-side half is
/// the positive-existential check, reported as
/// [`codes::REWRITE_QUERY_FRAGMENT`]).
///
/// Errors only when `peer` (or a DEC endpoint) is unknown. The verdict is
/// definitionally identical to [`crate::rewriting::rewrite_query`]'s
/// acceptance: both are driven by the same shape recognizers.
pub fn classify_rewritability(system: &P2PSystem, peer: &PeerId) -> Result<RewriteVerdict> {
    let peer_data = system.peer(peer)?;
    if !peer_data.local_ics.is_empty() {
        return Ok(RewriteVerdict::NotRewritable {
            code: codes::REWRITE_LOCAL_ICS,
            reason: format!(
                "peer {peer} declares {} local integrity constraint(s); \
                 FO rewriting does not handle local ICs",
                peer_data.local_ics.len()
            ),
        });
    }
    let (less, same) = system.trusted_decs_of(peer);
    for dec in less {
        if rewriting::inclusion_target(&dec.constraint, peer_data, system, &dec.other)?.is_none() {
            return Ok(RewriteVerdict::NotRewritable {
                code: codes::REWRITE_NOT_INCLUSION,
                reason: format!(
                    "DEC `{}` towards more-trusted {} is not a full inclusion \
                     into one of {peer}'s relations",
                    dec.constraint.name, dec.other
                ),
            });
        }
    }
    for dec in same {
        if rewriting::key_agreement_shape(&dec.constraint, peer_data)?.is_none() {
            return Ok(RewriteVerdict::NotRewritable {
                code: codes::REWRITE_NOT_KEY_AGREEMENT,
                reason: format!(
                    "DEC `{}` towards same-trusted {} is not a binary \
                     key-agreement constraint",
                    dec.constraint.name, dec.other
                ),
            });
        }
    }
    Ok(RewriteVerdict::Rewritable)
}

/// Map an eager-validation [`CoreError`] onto the analyzer diagnostic code
/// of its batch-mode equivalent (used by the DSL loader so `pdes-lint`
/// reports construction-time failures under the same stable codes).
pub fn code_for_error(error: &CoreError) -> Option<&'static str> {
    match error {
        CoreError::ConstraintUnknownRelation { .. } => Some(codes::UNKNOWN_RELATION),
        CoreError::ConstraintArity { .. } => Some(codes::ARITY_MISMATCH),
        CoreError::UnknownRelation { .. } => Some(codes::UNKNOWN_RELATION),
        CoreError::Constraint(_) => Some(codes::UNSAFE_CONSTRAINT),
        CoreError::Relalg(relalg::RelalgError::ArityMismatch { .. }) => Some(codes::ARITY_MISMATCH),
        _ => None,
    }
}

/// Pass 1 primitive: validate one constraint against a relation →
/// `(owner, arity)` map. Emits [`codes::UNSAFE_CONSTRAINT`] (safety),
/// [`codes::UNKNOWN_RELATION`], [`codes::ARITY_MISMATCH`] and — when
/// `endpoints` is given — [`codes::FOREIGN_RELATION`] for relations owned
/// by a peer outside the endpoint set.
pub fn check_constraint(
    constraint: &Constraint,
    location: &Location,
    arities: &BTreeMap<String, (PeerId, usize)>,
    endpoints: Option<&[&PeerId]>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if let Err(e) = constraint.check_safety() {
        out.push(Diagnostic {
            code: codes::UNSAFE_CONSTRAINT,
            severity: Severity::Error,
            location: location.clone(),
            message: format!("unsafe constraint: {e}"),
            payload: vec![("constraint".into(), constraint.name.clone())],
        });
    }
    for atom in constraint.body.iter().chain(constraint.head_atoms().iter()) {
        match arities.get(&atom.relation) {
            None => out.push(Diagnostic {
                code: codes::UNKNOWN_RELATION,
                severity: Severity::Error,
                location: location.clone(),
                message: format!("relation `{}` is not declared by any peer", atom.relation),
                payload: vec![("relation".into(), atom.relation.clone())],
            }),
            Some((owner, arity)) => {
                if *arity != atom.terms.len() {
                    out.push(Diagnostic {
                        code: codes::ARITY_MISMATCH,
                        severity: Severity::Error,
                        location: location.clone(),
                        message: format!(
                            "relation `{}` used with arity {}, declared with arity {arity}",
                            atom.relation,
                            atom.terms.len()
                        ),
                        payload: vec![
                            ("relation".into(), atom.relation.clone()),
                            ("expected".into(), arity.to_string()),
                            ("found".into(), atom.terms.len().to_string()),
                        ],
                    });
                }
                if let Some(allowed) = endpoints {
                    if !allowed.contains(&owner) {
                        out.push(Diagnostic {
                            code: codes::FOREIGN_RELATION,
                            severity: Severity::Warning,
                            location: location.clone(),
                            message: format!(
                                "relation `{}` is owned by {owner}, which is not an \
                                 endpoint of this constraint",
                                atom.relation
                            ),
                            payload: vec![
                                ("relation".into(), atom.relation.clone()),
                                ("owner".into(), owner.to_string()),
                            ],
                        });
                    }
                }
            }
        }
    }
    out
}

/// Pass 2 primitive: rule safety plus negation analysis of one datalog
/// program. Emits [`codes::UNSAFE_RULE`] per unsafe rule,
/// [`codes::ODD_NEGATIVE_LOOP`] per odd recursion-through-negation
/// component (with the cycle witness in the payload), one
/// [`codes::UNSTRATIFIED`] info when only even loops remain, and
/// [`codes::CLASSICAL_CLASH`] for complementary ground facts.
pub fn check_program(location: &Location, program: &datalog::Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rule in program.unsafe_rules() {
        out.push(Diagnostic {
            code: codes::UNSAFE_RULE,
            severity: Severity::Error,
            location: location.clone(),
            message: format!("unsafe rule: {rule}"),
            payload: vec![("rule".into(), rule.to_string())],
        });
    }

    let graph = PredicateGraph::new(program);
    let loops = graph.negation_loops();
    let mut even_loops = 0usize;
    for l in &loops {
        if l.odd_core.is_empty() {
            even_loops += 1;
            continue;
        }
        out.push(Diagnostic {
            code: codes::ODD_NEGATIVE_LOOP,
            severity: Severity::Warning,
            location: location.clone(),
            message: format!(
                "odd negative loop through {} (atoms on it can become unsupportable)",
                l.odd_core.join(" -> ")
            ),
            payload: vec![
                ("cycle".into(), l.odd_core.join(",")),
                ("component".into(), l.predicates.join(",")),
            ],
        });
    }
    if even_loops > 0 {
        out.push(Diagnostic {
            code: codes::UNSTRATIFIED,
            severity: Severity::Info,
            location: location.clone(),
            message: format!(
                "not stratified: {even_loops} even negative loop(s); \
                 resolved by stable-model search"
            ),
            payload: vec![("even_loops".into(), even_loops.to_string())],
        });
    }

    // Complementary classically-negated facts.
    let mut seen: BTreeMap<(String, String), bool> = BTreeMap::new();
    for rule in program.rules() {
        if !rule.body.is_empty() || rule.head.len() != 1 {
            continue;
        }
        let atom = &rule.head[0];
        let terms = atom
            .terms
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let key = (atom.predicate.clone(), terms);
        if let Some(&prior) = seen.get(&key) {
            if prior != atom.strong_neg {
                out.push(Diagnostic {
                    code: codes::CLASSICAL_CLASH,
                    severity: Severity::Warning,
                    location: location.clone(),
                    message: format!("complementary facts {0}({1}) and -{0}({1})", key.0, key.1),
                    payload: vec![("predicate".into(), key.0.clone())],
                });
            }
        } else {
            seen.insert(key, atom.strong_neg);
        }
    }
    out
}

/// The relation → `(owner, declared arity)` map of a system.
fn relation_arities(system: &P2PSystem) -> BTreeMap<String, (PeerId, usize)> {
    let mut out = BTreeMap::new();
    for peer in system.peers() {
        for schema in peer.schema.relations() {
            out.insert(schema.name().to_string(), (peer.id.clone(), schema.arity()));
        }
    }
    out
}

/// Pass 3: DEC-network topology and trust hygiene.
fn check_topology(system: &P2PSystem, report: &mut Report) {
    let peers: Vec<PeerId> = system.peer_ids().cloned().collect();
    let index: BTreeMap<&PeerId, usize> = peers.iter().enumerate().map(|(i, p)| (p, i)).collect();

    // DEC graph: owner → other, deduplicated.
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); peers.len()];
    let mut touched: BTreeSet<usize> = BTreeSet::new();
    let mut linked: BTreeSet<(usize, usize)> = BTreeSet::new();
    for dec in system.decs() {
        let (a, b) = (index[&dec.owner], index[&dec.other]);
        if !edges[a].contains(&b) {
            edges[a].push(b);
        }
        touched.insert(a);
        touched.insert(b);
        linked.insert((a.min(b), a.max(b)));
    }

    // Cycles among peers: SCCs of size > 1, or self-DECs.
    let component = datalog::graph::strongly_connected_components(peers.len(), &edges);
    let mut by_component: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (node, &comp) in component.iter().enumerate() {
        by_component.entry(comp).or_default().push(node);
    }
    for members in by_component.values() {
        let cyclic =
            members.len() > 1 || (members.len() == 1 && edges[members[0]].contains(&members[0]));
        if !cyclic {
            continue;
        }
        let names: Vec<String> = members.iter().map(|&i| peers[i].to_string()).collect();
        report.push(Diagnostic {
            code: codes::DEC_CYCLE,
            severity: Severity::Warning,
            location: Location::System,
            message: format!(
                "DEC cycle among peers {} (the paper's direct semantics assumes \
                 an acyclic exchange; answers may depend on loop handling)",
                names.join(" -> ")
            ),
            payload: vec![("cycle".into(), names.join(","))],
        });
    }

    for (i, peer) in peers.iter().enumerate() {
        if peers.len() > 1 && !touched.contains(&i) {
            report.push(Diagnostic {
                code: codes::ISOLATED_PEER,
                severity: Severity::Info,
                location: Location::Peer(peer.clone()),
                message: "peer participates in no DEC; queries never see other peers' data"
                    .to_string(),
                payload: Vec::new(),
            });
        }
        if system
            .peer(peer)
            .map(|p| p.schema.relations().next().is_none())
            .unwrap_or(false)
        {
            report.push(Diagnostic {
                code: codes::EMPTY_SCHEMA,
                severity: Severity::Warning,
                location: Location::Peer(peer.clone()),
                message: "peer declares no relations".to_string(),
                payload: Vec::new(),
            });
        }
    }

    // Sharding affinity: if the *undirected* DEC graph is one component
    // spanning every peer, closure-connected-component partitioning (the
    // sharded store's placement unit) can never use more than one shard.
    if peers.len() > 1 {
        let mut parent: Vec<usize> = (0..peers.len()).collect();
        fn find(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for &(a, b) in &linked {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent[ra.max(rb)] = ra.min(rb);
        }
        let roots: BTreeSet<usize> = (0..peers.len()).map(|i| find(&mut parent, i)).collect();
        if roots.len() == 1 {
            report.push(Diagnostic {
                code: codes::SHARDING_HOSTILE,
                severity: Severity::Info,
                location: Location::System,
                message: format!(
                    "the DEC network is one closure-connected component spanning all \
                     {} peers; closure-based sharding degenerates to a single shard",
                    peers.len()
                ),
                payload: vec![("peers".into(), peers.len().to_string())],
            });
        }
    }

    // Trust hygiene.
    let mut seen_pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (who, level, whom) in system.trust().entries() {
        let (a, b) = (index[who], index[whom]);
        if !linked.contains(&(a.min(b), a.max(b))) {
            report.push(Diagnostic {
                code: codes::DANGLING_TRUST,
                severity: Severity::Warning,
                location: Location::Trust {
                    who: who.clone(),
                    whom: whom.clone(),
                },
                message: "trust declared between peers that share no DEC".to_string(),
                payload: Vec::new(),
            });
        }
        let pair = (a.min(b), a.max(b));
        if !seen_pairs.insert(pair) {
            continue; // the asymmetry of this pair was already judged
        }
        if let Some(back) = system.trust().level(whom, who) {
            let asymmetric = back != level;
            let mutual_deference = back == TrustLevel::Less && level == TrustLevel::Less;
            if asymmetric || mutual_deference {
                report.push(Diagnostic {
                    code: codes::TRUST_ASYMMETRY,
                    severity: Severity::Warning,
                    location: Location::Trust {
                        who: who.clone(),
                        whom: whom.clone(),
                    },
                    message: if mutual_deference {
                        format!(
                            "mutual deference: {who} and {whom} each trust the other \
                             more than themselves"
                        )
                    } else {
                        format!(
                            "asymmetric trust: {who} -> {whom} is {level:?} but \
                             {whom} -> {who} is {back:?}"
                        )
                    },
                    payload: vec![
                        ("forward".into(), format!("{level:?}")),
                        ("backward".into(), format!("{back:?}")),
                    ],
                });
            }
        }
    }

    // DECs the semantics silently ignores (no trust declared).
    for (idx, dec) in system.decs().iter().enumerate() {
        if system.trust().level(&dec.owner, &dec.other).is_none() {
            report.push(Diagnostic {
                code: codes::UNTRUSTED_DEC,
                severity: Severity::Warning,
                location: Location::Dec {
                    owner: dec.owner.clone(),
                    other: dec.other.clone(),
                    index: idx,
                    name: dec.constraint.name.clone(),
                },
                message: format!(
                    "no trust declared from {} towards {}; the DEC is ignored by \
                     the semantics",
                    dec.owner, dec.other
                ),
                payload: Vec::new(),
            });
        }
    }
}

impl P2PSystem {
    /// Run every static-analysis pass over this system and collect the
    /// diagnostics: (1) schema/arity/safety validation of every DEC and
    /// local IC, (2) negation analysis of every peer's specification
    /// program, (3) DEC-network topology and trust hygiene, (4)
    /// rewritability classification (why [`crate::engine::Strategy::Auto`]
    /// would, or would not, use the FO rewriting for each peer).
    ///
    /// The report is deterministic: same system, same diagnostics, same
    /// order — which is what the CI smoke gate counts exactly.
    pub fn analyze(&self) -> Report {
        let mut report = Report::default();
        let arities = relation_arities(self);

        // Pass 1: DECs and local ICs against the declared schemas.
        for peer in self.peers() {
            for ic in &peer.local_ics {
                let location = Location::Ic {
                    peer: peer.id.clone(),
                    name: ic.name.clone(),
                };
                report.extend(check_constraint(ic, &location, &arities, Some(&[&peer.id])));
            }
        }
        for (index, dec) in self.decs().iter().enumerate() {
            let location = Location::Dec {
                owner: dec.owner.clone(),
                other: dec.other.clone(),
                index,
                name: dec.constraint.name.clone(),
            };
            report.extend(check_constraint(
                &dec.constraint,
                &location,
                &arities,
                Some(&[&dec.owner, &dec.other]),
            ));
        }
        let schema_errors = report.error_count();

        // Pass 2: per-peer specification programs. Generation failures are
        // only reported when pass 1 was clean — otherwise they are a
        // consequence of the schema errors already on record.
        for peer in self.peers() {
            let location = Location::Peer(peer.id.clone());
            match annotated_program(self, &peer.id) {
                Ok(spec) => report.extend(check_program(&location, &spec.program)),
                Err(e) if schema_errors == 0 => report.push(Diagnostic {
                    code: codes::SPEC_GENERATION,
                    severity: Severity::Error,
                    location,
                    message: format!("could not generate the specification program: {e}"),
                    payload: Vec::new(),
                }),
                Err(_) => {}
            }
        }

        // Pass 3: topology and trust.
        check_topology(self, &mut report);

        // Pass 4: rewritability classification, one info per non-rewritable
        // peer that actually exchanges data.
        for peer in self.peers() {
            let (less, same) = self.trusted_decs_of(&peer.id);
            if less.is_empty() && same.is_empty() && peer.local_ics.is_empty() {
                continue;
            }
            if let Ok(RewriteVerdict::NotRewritable { code, reason }) =
                classify_rewritability(self, &peer.id)
            {
                report.push(Diagnostic {
                    code,
                    severity: Severity::Info,
                    location: Location::Peer(peer.id.clone()),
                    message: format!("not rewritable: {reason}; Strategy::Auto uses ASP"),
                    payload: Vec::new(),
                });
            }
        }

        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::example1_system;
    use constraints::{AtomPattern, ConstraintHead};
    use relalg::query::Term;

    #[test]
    fn example1_is_error_free_and_rewritable() {
        let system = example1_system();
        let report = system.analyze();
        assert!(report.is_clean(), "unexpected errors:\n{}", report.render());
        let verdict = classify_rewritability(&system, &PeerId::new("P1")).unwrap();
        assert_eq!(verdict, RewriteVerdict::Rewritable);
    }

    #[test]
    fn classification_matches_the_rewrite_compiler() {
        let system = example1_system();
        for peer in system.peer_ids() {
            let classified = matches!(
                classify_rewritability(&system, peer).unwrap(),
                RewriteVerdict::Rewritable
            );
            assert_eq!(classified, rewriting::supports_peer(&system, peer));
        }
    }

    #[test]
    fn injected_arity_mismatch_is_reported() {
        let mut system = example1_system();
        let bad = Constraint::new(
            "bad_arity",
            vec![AtomPattern::new(
                "R2",
                vec![Term::var("X"), Term::var("Y"), Term::var("Z")],
            )],
            vec![],
            ConstraintHead::Atoms(vec![AtomPattern::new(
                "R1",
                vec![Term::var("X"), Term::var("Y")],
            )]),
        )
        .unwrap();
        system
            .add_dec_unchecked(&PeerId::new("P1"), &PeerId::new("P2"), bad)
            .unwrap();
        let report = system.analyze();
        assert!(report.has_code(codes::ARITY_MISMATCH));
        assert!(!report.is_clean());
    }

    #[test]
    fn eager_validation_rejects_what_the_analyzer_flags() {
        let mut system = example1_system();
        let unknown = Constraint::new(
            "unknown_rel",
            vec![AtomPattern::new("Nope", vec![Term::var("X")])],
            vec![],
            ConstraintHead::False,
        )
        .unwrap();
        let err = system
            .add_dec(&PeerId::new("P1"), &PeerId::new("P2"), unknown)
            .unwrap_err();
        assert_eq!(code_for_error(&err), Some(codes::UNKNOWN_RELATION));

        let short = Constraint::new(
            "short",
            vec![AtomPattern::new("R1", vec![Term::var("X")])],
            vec![],
            ConstraintHead::False,
        )
        .unwrap();
        let err = system.add_local_ic(&PeerId::new("P1"), short).unwrap_err();
        assert_eq!(code_for_error(&err), Some(codes::ARITY_MISMATCH));
    }

    #[test]
    fn report_counts_and_rendering() {
        let report = Report::from_diagnostics(vec![Diagnostic {
            code: codes::DEC_CYCLE,
            severity: Severity::Warning,
            location: Location::System,
            message: "x".into(),
            payload: vec![],
        }]);
        assert_eq!(report.warning_count(), 1);
        assert!(report.is_clean());
        assert!(report.render().contains("PDES-A201"));
    }
}

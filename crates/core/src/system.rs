//! The P2P data exchange system model (Definition 2).
//!
//! A [`P2PSystem`] bundles:
//!
//! * a finite set of [`Peer`]s, each owning a schema, an instance and a set
//!   of local integrity constraints `IC(P)`;
//! * data exchange constraints ([`Dec`]) `Σ(P, Q)` between pairs of peers,
//!   owned by the peer that will use them when answering queries;
//! * a [`TrustRelation`]: `(P, less, Q)` — "P trusts itself less than Q" —
//!   or `(P, same, Q)` — "P trusts itself the same as Q".
//!
//! Peer schemas are disjoint (Definition 2(b)): every relation name belongs
//! to exactly one peer, which is how the solution semantics knows whose data
//! may be (virtually) changed.

use crate::error::CoreError;
use crate::Result;
use constraints::Constraint;
use relalg::{Database, RelationSchema, Schema};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a peer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerId(pub String);

impl PeerId {
    /// Construct a peer id.
    pub fn new(name: impl Into<String>) -> Self {
        PeerId(name.into())
    }

    /// The peer's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for PeerId {
    fn from(s: &str) -> Self {
        PeerId::new(s)
    }
}

/// How much a peer trusts another peer relative to itself
/// (Definition 2(f)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TrustLevel {
    /// `(P, less, Q)`: P trusts itself less than Q — Q's data is held fixed
    /// and P accommodates its own data to it.
    Less,
    /// `(P, same, Q)`: P trusts itself the same as Q — both peers' data may
    /// be (virtually) changed when looking for solutions.
    Same,
}

impl fmt::Display for TrustLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrustLevel::Less => write!(f, "less"),
            TrustLevel::Same => write!(f, "same"),
        }
    }
}

/// The trust relation of the whole system: a partial map from ordered peer
/// pairs to trust levels (the second component of the paper's triple is
/// functionally determined by the pair).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustRelation {
    entries: BTreeMap<(PeerId, PeerId), TrustLevel>,
}

impl TrustRelation {
    /// Empty trust relation.
    pub fn new() -> Self {
        TrustRelation::default()
    }

    /// Record that `who` trusts itself `level` than/as `whom`.
    pub fn set(&mut self, who: PeerId, level: TrustLevel, whom: PeerId) {
        self.entries.insert((who, whom), level);
    }

    /// The trust level of `who` towards `whom`, if declared.
    pub fn level(&self, who: &PeerId, whom: &PeerId) -> Option<TrustLevel> {
        self.entries.get(&(who.clone(), whom.clone())).copied()
    }

    /// Peers that `who` trusts more than itself (`less` entries).
    pub fn more_trusted_than_self(&self, who: &PeerId) -> BTreeSet<PeerId> {
        self.entries
            .iter()
            .filter(|((a, _), lvl)| a == who && **lvl == TrustLevel::Less)
            .map(|((_, b), _)| b.clone())
            .collect()
    }

    /// Peers that `who` trusts the same as itself.
    pub fn same_trusted(&self, who: &PeerId) -> BTreeSet<PeerId> {
        self.entries
            .iter()
            .filter(|((a, _), lvl)| a == who && **lvl == TrustLevel::Same)
            .map(|((_, b), _)| b.clone())
            .collect()
    }

    /// All entries.
    pub fn entries(&self) -> impl Iterator<Item = (&PeerId, TrustLevel, &PeerId)> {
        self.entries.iter().map(|((a, b), lvl)| (a, *lvl, b))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no trust has been declared.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A data exchange constraint `Σ(P, Q)` (Definition 2(e)): a sentence over
/// the union of the schemas of its owner `P` and the other peer `Q`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dec {
    /// The peer that owns (and enforces) the constraint.
    pub owner: PeerId,
    /// The other peer mentioned by the constraint.
    pub other: PeerId,
    /// The sentence itself.
    pub constraint: Constraint,
}

impl Dec {
    /// Construct a DEC.
    pub fn new(owner: impl Into<PeerId>, other: impl Into<PeerId>, constraint: Constraint) -> Self
    where
        PeerId: From<&'static str>,
    {
        Dec {
            owner: owner.into(),
            other: other.into(),
            constraint,
        }
    }
}

impl fmt::Display for Dec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Σ({}, {}): {}", self.owner, self.other, self.constraint)
    }
}

/// A peer: schema, instance and local integrity constraints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Peer {
    /// The peer's identifier.
    pub id: PeerId,
    /// The peer's schema `R(P)`.
    pub schema: Schema,
    /// The peer's instance `r(P)`.
    pub instance: Database,
    /// The peer's local integrity constraints `IC(P)`.
    pub local_ics: Vec<Constraint>,
}

impl Peer {
    /// Create a peer with an empty schema and instance.
    pub fn new(id: impl Into<PeerId>) -> Self
    where
        PeerId: From<&'static str>,
    {
        Peer {
            id: id.into(),
            schema: Schema::new(),
            instance: Database::new(),
            local_ics: Vec::new(),
        }
    }

    /// Names of the relations owned by this peer.
    pub fn relation_names(&self) -> BTreeSet<String> {
        self.schema.relation_names().map(str::to_string).collect()
    }
}

/// A complete P2P data exchange system.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct P2PSystem {
    peers: BTreeMap<PeerId, Peer>,
    decs: Vec<Dec>,
    trust: TrustRelation,
}

impl P2PSystem {
    /// An empty system.
    pub fn new() -> Self {
        P2PSystem::default()
    }

    /// Add a peer (empty schema/instance); errors if the peer exists.
    pub fn add_peer(&mut self, id: impl Into<PeerId>) -> Result<()> {
        let id = id.into();
        if self.peers.contains_key(&id) {
            return Err(CoreError::DuplicatePeer(id.to_string()));
        }
        self.peers.insert(
            id.clone(),
            Peer {
                id,
                schema: Schema::new(),
                instance: Database::new(),
                local_ics: Vec::new(),
            },
        );
        Ok(())
    }

    /// Declare a relation for a peer. Relation names must be globally unique.
    pub fn add_relation(&mut self, peer: &PeerId, schema: RelationSchema) -> Result<()> {
        if let Some(owner) = self.owner_of(schema.name()) {
            if &owner != peer {
                return Err(CoreError::RelationOwnedElsewhere {
                    relation: schema.name().to_string(),
                    owner: owner.to_string(),
                });
            }
        }
        let p = self
            .peers
            .get_mut(peer)
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))?;
        p.schema.add(schema.clone())?;
        p.instance.ensure_relation(&schema);
        Ok(())
    }

    /// Insert a tuple into one of a peer's relations.
    pub fn insert(&mut self, peer: &PeerId, relation: &str, tuple: relalg::Tuple) -> Result<()> {
        let p = self
            .peers
            .get_mut(peer)
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))?;
        if !p.schema.contains(relation) {
            return Err(CoreError::UnknownRelation {
                peer: peer.to_string(),
                relation: relation.to_string(),
            });
        }
        p.instance.insert(relation, tuple)?;
        Ok(())
    }

    /// Remove a tuple from one of a peer's relations. Returns whether the
    /// tuple was present.
    pub fn delete(&mut self, peer: &PeerId, relation: &str, tuple: &relalg::Tuple) -> Result<bool> {
        let p = self
            .peers
            .get_mut(peer)
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))?;
        if !p.schema.contains(relation) {
            return Err(CoreError::UnknownRelation {
                peer: peer.to_string(),
                relation: relation.to_string(),
            });
        }
        Ok(p.instance.remove(relation, tuple)?)
    }

    /// Apply a [`relalg::Delta`] to a peer's instance: every insertion and
    /// deletion must target a relation the peer declares (this is what makes
    /// a delta an update to *that* peer — Definition 2(b)'s disjoint schemas
    /// mean every ground atom has exactly one legal home). Validation happens
    /// before any change is applied, so a failed call leaves the system
    /// untouched.
    pub fn apply_delta(&mut self, peer: &PeerId, delta: &relalg::Delta) -> Result<()> {
        self.validate_delta(peer, delta)?;
        let p = self.peers.get_mut(peer).expect("validated above");
        for atom in &delta.insertions {
            p.instance.insert(&atom.relation, atom.tuple.clone())?;
        }
        for atom in &delta.deletions {
            p.instance.remove(&atom.relation, &atom.tuple)?;
        }
        Ok(())
    }

    /// Validate a delta against a peer's declared schema without applying
    /// it: every insertion and deletion must target a relation the peer
    /// declares, with matching arity. [`P2PSystem::apply_delta`] runs this
    /// first; epoch-publishing stores run it against their topology replica
    /// before building the successor epoch.
    pub fn validate_delta(&self, peer: &PeerId, delta: &relalg::Delta) -> Result<()> {
        let p = self
            .peers
            .get(peer)
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))?;
        for atom in delta.insertions.iter().chain(delta.deletions.iter()) {
            let schema =
                p.schema
                    .relation(&atom.relation)
                    .ok_or_else(|| CoreError::UnknownRelation {
                        peer: peer.to_string(),
                        relation: atom.relation.clone(),
                    })?;
            // Arity must be validated up front too: a mismatch surfacing
            // mid-application would leave the instance partially mutated.
            if schema.arity() != atom.tuple.arity() {
                return Err(relalg::RelalgError::ArityMismatch {
                    relation: atom.relation.clone(),
                    expected: schema.arity(),
                    found: atom.tuple.arity(),
                }
                .into());
            }
        }
        Ok(())
    }

    /// Check every relation mentioned by a constraint against the declared
    /// schemas: each must be declared by some peer, with the atom's arity
    /// matching the declaration. This is the eager (construction-time) twin
    /// of the analyzer's `PDES-A001` / `PDES-A002` diagnostics — a mismatch
    /// is reported here instead of surviving until grounding.
    fn validate_constraint_relations(&self, constraint: &Constraint) -> Result<()> {
        for atom in constraint.body.iter().chain(constraint.head_atoms().iter()) {
            let declared = self
                .peers
                .values()
                .find_map(|p| p.schema.relation(&atom.relation));
            match declared {
                None => {
                    return Err(CoreError::ConstraintUnknownRelation {
                        constraint: constraint.name.clone(),
                        relation: atom.relation.clone(),
                    })
                }
                Some(schema) if schema.arity() != atom.terms.len() => {
                    return Err(CoreError::ConstraintArity {
                        constraint: constraint.name.clone(),
                        relation: atom.relation.clone(),
                        expected: schema.arity(),
                        found: atom.terms.len(),
                    })
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Add a local integrity constraint to a peer. Every relation the
    /// constraint mentions must already be declared with a matching arity
    /// ([`CoreError::ConstraintUnknownRelation`] /
    /// [`CoreError::ConstraintArity`] otherwise).
    pub fn add_local_ic(&mut self, peer: &PeerId, ic: Constraint) -> Result<()> {
        if !self.peers.contains_key(peer) {
            return Err(CoreError::UnknownPeer(peer.to_string()));
        }
        self.validate_constraint_relations(&ic)?;
        self.add_local_ic_unchecked(peer, ic)
    }

    /// [`P2PSystem::add_local_ic`] without relation/arity validation.
    ///
    /// Escape hatch for the static analyzer's defect-injection tests, which
    /// need to build ill-formed systems on purpose; not intended for regular
    /// use.
    #[doc(hidden)]
    pub fn add_local_ic_unchecked(&mut self, peer: &PeerId, ic: Constraint) -> Result<()> {
        let p = self
            .peers
            .get_mut(peer)
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))?;
        p.local_ics.push(ic);
        Ok(())
    }

    /// Add a data exchange constraint owned by `owner` towards `other`.
    /// Every relation the constraint mentions must already be declared with
    /// a matching arity ([`CoreError::ConstraintUnknownRelation`] /
    /// [`CoreError::ConstraintArity`] otherwise).
    pub fn add_dec(
        &mut self,
        owner: &PeerId,
        other: &PeerId,
        constraint: Constraint,
    ) -> Result<()> {
        for p in [owner, other] {
            if !self.peers.contains_key(p) {
                return Err(CoreError::UnknownPeer(p.to_string()));
            }
        }
        self.validate_constraint_relations(&constraint)?;
        self.add_dec_unchecked(owner, other, constraint)
    }

    /// [`P2PSystem::add_dec`] without relation/arity validation.
    ///
    /// Escape hatch for the static analyzer's defect-injection tests, which
    /// need to build ill-formed systems on purpose; not intended for regular
    /// use.
    #[doc(hidden)]
    pub fn add_dec_unchecked(
        &mut self,
        owner: &PeerId,
        other: &PeerId,
        constraint: Constraint,
    ) -> Result<()> {
        for p in [owner, other] {
            if !self.peers.contains_key(p) {
                return Err(CoreError::UnknownPeer(p.to_string()));
            }
        }
        self.decs.push(Dec {
            owner: owner.clone(),
            other: other.clone(),
            constraint,
        });
        Ok(())
    }

    /// Declare a trust relationship: `who` trusts itself `level` than/as `whom`.
    pub fn set_trust(&mut self, who: &PeerId, level: TrustLevel, whom: &PeerId) -> Result<()> {
        for p in [who, whom] {
            if !self.peers.contains_key(p) {
                return Err(CoreError::UnknownPeer(p.to_string()));
            }
        }
        self.trust.set(who.clone(), level, whom.clone());
        Ok(())
    }

    /// The peers of the system, in id order.
    pub fn peers(&self) -> impl Iterator<Item = &Peer> {
        self.peers.values()
    }

    /// Peer ids in order.
    pub fn peer_ids(&self) -> impl Iterator<Item = &PeerId> {
        self.peers.keys()
    }

    /// Look up a peer.
    pub fn peer(&self, id: &PeerId) -> Result<&Peer> {
        self.peers
            .get(id)
            .ok_or_else(|| CoreError::UnknownPeer(id.to_string()))
    }

    /// Number of peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// All DECs.
    pub fn decs(&self) -> &[Dec] {
        &self.decs
    }

    /// The DECs owned by a peer (its `Σ(P)`).
    pub fn decs_of(&self, peer: &PeerId) -> Vec<&Dec> {
        self.decs.iter().filter(|d| &d.owner == peer).collect()
    }

    /// The DECs owned by a peer towards peers it trusts at least as much as
    /// itself, split into (`less` DECs, `same` DECs). DECs towards peers with
    /// no declared trust are ignored, as the paper prescribes ("only when P
    /// trusts Q the same as or more than itself, it has to consider Q's
    /// data").
    pub fn trusted_decs_of(&self, peer: &PeerId) -> (Vec<&Dec>, Vec<&Dec>) {
        let mut less = Vec::new();
        let mut same = Vec::new();
        for dec in self.decs_of(peer) {
            match self.trust.level(peer, &dec.other) {
                Some(TrustLevel::Less) => less.push(dec),
                Some(TrustLevel::Same) => same.push(dec),
                None => {}
            }
        }
        (less, same)
    }

    /// The trust relation.
    pub fn trust(&self) -> &TrustRelation {
        &self.trust
    }

    /// The peer owning a relation, if any.
    pub fn owner_of(&self, relation: &str) -> Option<PeerId> {
        self.peers
            .values()
            .find(|p| p.schema.contains(relation))
            .map(|p| p.id.clone())
    }

    /// The global instance `r̄`: the union of every peer's instance.
    pub fn global_instance(&self) -> Result<Database> {
        let mut out = Database::new();
        for peer in self.peers.values() {
            out = out.union(&peer.instance)?;
        }
        Ok(out)
    }

    /// The extended schema `R̄(P)` of a peer: its own relations plus every
    /// relation mentioned by its DECs (Definition 3(a)).
    pub fn extended_schema(&self, peer: &PeerId) -> Result<Schema> {
        let p = self.peer(peer)?;
        let mut schema = p.schema.clone();
        for dec in self.decs_of(peer) {
            for relation in dec.constraint.relations() {
                if let Some(owner) = self.owner_of(&relation) {
                    let rel_schema = self
                        .peer(&owner)?
                        .schema
                        .relation(&relation)
                        .cloned()
                        .ok_or_else(|| CoreError::UnknownRelation {
                            peer: owner.to_string(),
                            relation: relation.clone(),
                        })?;
                    schema.add(rel_schema)?;
                }
            }
        }
        Ok(schema)
    }

    /// Relation names owned by peers that `peer` trusts more than itself —
    /// the `R(P)^less` of Definition 3(d).
    pub fn relations_less(&self, peer: &PeerId) -> BTreeSet<String> {
        self.trust
            .more_trusted_than_self(peer)
            .iter()
            .filter_map(|q| self.peers.get(q))
            .flat_map(|p| p.relation_names())
            .collect()
    }

    /// Relation names owned by peers that `peer` trusts the same as itself —
    /// the `R(P)^same` of Definition 3(d).
    pub fn relations_same(&self, peer: &PeerId) -> BTreeSet<String> {
        self.trust
            .same_trusted(peer)
            .iter()
            .filter_map(|q| self.peers.get(q))
            .flat_map(|p| p.relation_names())
            .collect()
    }

    /// The *relevant peers* of a peer: every peer whose data can influence
    /// `peer`'s peer consistent answers — `peer` itself plus every peer
    /// reachable from it following DEC ownership edges (`owner → other`)
    /// transitively. The transitive closure covers both the direct semantics
    /// of Definition 4 (which only reads direct DEC targets) and the
    /// transitive composition of Section 4.3, so it is a sound
    /// over-approximation for every answering mechanism. Edges are followed
    /// regardless of declared trust: an untrusted DEC is ignored by the
    /// semantics today, but including it keeps the closure stable if trust
    /// is declared later.
    pub fn dependencies_of(&self, peer: &PeerId) -> BTreeSet<PeerId> {
        let mut closure = BTreeSet::from([peer.clone()]);
        let mut frontier = vec![peer.clone()];
        while let Some(p) = frontier.pop() {
            for dec in self.decs.iter().filter(|d| d.owner == p) {
                if closure.insert(dec.other.clone()) {
                    frontier.push(dec.other.clone());
                }
            }
        }
        closure
    }

    /// The *relevant-peer closure* of a set of touched peers: every peer
    /// whose dependency set (see [`P2PSystem::dependencies_of`]) intersects
    /// `touched` — i.e. every peer whose memoized answering artifacts a
    /// commit touching those peers may have stale.
    pub fn affected_by(&self, touched: &BTreeSet<PeerId>) -> BTreeSet<PeerId> {
        self.peers
            .keys()
            .filter(|p| !self.dependencies_of(p).is_disjoint(touched))
            .cloned()
            .collect()
    }

    /// Restrict a global instance to a peer's own relations (`r'|P` in
    /// Definition 5).
    pub fn restrict_to_peer(&self, db: &Database, peer: &PeerId) -> Result<Database> {
        let p = self.peer(peer)?;
        let names: Vec<String> = p.relation_names().into_iter().collect();
        Ok(db.restrict(names.iter().map(String::as_str)))
    }

    /// A *topology-only* replica of this system: same peers, schemas, DECs,
    /// trust relation and local ICs, but every peer instance emptied (each
    /// declared relation is present with zero tuples). This is the part of a
    /// system that is safe to replicate onto every node of a distributed
    /// deployment — instances stay with their owning shard and are fetched
    /// through a [`crate::store::PeerStore`].
    pub fn topology_only(&self) -> P2PSystem {
        let mut out = self.clone();
        for peer in out.peers.values_mut() {
            let mut instance = Database::new();
            for name in peer.schema.relation_names() {
                if let Some(schema) = peer.schema.relation(name) {
                    instance.ensure_relation(schema);
                }
            }
            peer.instance = instance;
        }
        out
    }

    /// Replace a peer's instance wholesale. Used by stores to install
    /// instances fetched over a transport into a topology-only replica; the
    /// peer must exist, but the instance is installed as-is (it is the
    /// store's responsibility to hand over data matching the schema).
    pub fn set_instance(&mut self, peer: &PeerId, instance: Database) -> Result<()> {
        let p = self
            .peers
            .get_mut(peer)
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))?;
        p.instance = instance;
        Ok(())
    }
}

/// Build the system of Example 1 of the paper. Used by tests, examples and
/// benchmarks as the canonical small system.
pub fn example1_system() -> P2PSystem {
    use constraints::builders::{full_inclusion, key_agreement};
    use relalg::Tuple;

    let p1 = PeerId::new("P1");
    let p2 = PeerId::new("P2");
    let p3 = PeerId::new("P3");
    let mut sys = P2PSystem::new();
    for p in [&p1, &p2, &p3] {
        sys.add_peer(p.clone()).expect("fresh peer");
    }
    sys.add_relation(&p1, RelationSchema::new("R1", &["x", "y"]))
        .unwrap();
    sys.add_relation(&p2, RelationSchema::new("R2", &["x", "y"]))
        .unwrap();
    sys.add_relation(&p3, RelationSchema::new("R3", &["x", "y"]))
        .unwrap();
    for (peer, rel, a, b) in [
        (&p1, "R1", "a", "b"),
        (&p1, "R1", "s", "t"),
        (&p2, "R2", "c", "d"),
        (&p2, "R2", "a", "e"),
        (&p3, "R3", "a", "f"),
        (&p3, "R3", "s", "u"),
    ] {
        sys.insert(peer, rel, Tuple::strs([a, b])).unwrap();
    }
    // Σ(P1, P2): ∀xy (R2(x, y) → R1(x, y));  Σ(P1, P3): ∀xyz (R1(x,y) ∧ R3(x,z) → y = z).
    sys.add_dec(
        &p1,
        &p2,
        full_inclusion("sigma_p1_p2", "R2", "R1", 2).unwrap(),
    )
    .unwrap();
    sys.add_dec(&p1, &p3, key_agreement("sigma_p1_p3", "R1", "R3").unwrap())
        .unwrap();
    sys.set_trust(&p1, TrustLevel::Less, &p2).unwrap();
    sys.set_trust(&p1, TrustLevel::Same, &p3).unwrap();
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalg::Tuple;

    #[test]
    fn example1_system_has_expected_shape() {
        let sys = example1_system();
        assert_eq!(sys.peer_count(), 3);
        assert_eq!(sys.decs().len(), 2);
        assert_eq!(sys.trust().len(), 2);
        let p1 = PeerId::new("P1");
        let (less, same) = sys.trusted_decs_of(&p1);
        assert_eq!(less.len(), 1);
        assert_eq!(same.len(), 1);
        assert_eq!(sys.owner_of("R2"), Some(PeerId::new("P2")));
        assert_eq!(sys.owner_of("Nope"), None);
        let global = sys.global_instance().unwrap();
        assert_eq!(global.tuple_count(), 6);
    }

    #[test]
    fn duplicate_peer_is_rejected() {
        let mut sys = P2PSystem::new();
        sys.add_peer("A").unwrap();
        assert!(matches!(
            sys.add_peer("A"),
            Err(CoreError::DuplicatePeer(_))
        ));
    }

    #[test]
    fn relation_ownership_is_exclusive() {
        let mut sys = P2PSystem::new();
        sys.add_peer("A").unwrap();
        sys.add_peer("B").unwrap();
        let a = PeerId::new("A");
        let b = PeerId::new("B");
        sys.add_relation(&a, RelationSchema::new("R", &["x"]))
            .unwrap();
        let err = sys
            .add_relation(&b, RelationSchema::new("R", &["x"]))
            .unwrap_err();
        assert!(matches!(err, CoreError::RelationOwnedElsewhere { .. }));
        // Re-declaring the same relation for the same peer is fine.
        sys.add_relation(&a, RelationSchema::new("R", &["x"]))
            .unwrap();
    }

    #[test]
    fn insert_validates_peer_and_relation() {
        let mut sys = P2PSystem::new();
        sys.add_peer("A").unwrap();
        let a = PeerId::new("A");
        sys.add_relation(&a, RelationSchema::new("R", &["x"]))
            .unwrap();
        sys.insert(&a, "R", Tuple::strs(["v"])).unwrap();
        assert!(sys.insert(&a, "S", Tuple::strs(["v"])).is_err());
        assert!(sys
            .insert(&PeerId::new("Z"), "R", Tuple::strs(["v"]))
            .is_err());
    }

    #[test]
    fn trusted_decs_ignore_untrusted_targets() {
        let mut sys = example1_system();
        // Add a DEC towards a peer with no trust declaration.
        let p1 = PeerId::new("P1");
        let p3 = PeerId::new("P3");
        // Remove trust toward P3 by rebuilding a fresh system without it:
        let mut fresh = P2PSystem::new();
        for p in ["P1", "P3"] {
            fresh.add_peer(p).unwrap();
        }
        fresh
            .add_relation(&p1, RelationSchema::new("A1", &["x"]))
            .unwrap();
        fresh
            .add_relation(&p3, RelationSchema::new("A3", &["x"]))
            .unwrap();
        fresh
            .add_dec(
                &p1,
                &p3,
                constraints::builders::full_inclusion("d", "A3", "A1", 1).unwrap(),
            )
            .unwrap();
        let (less, same) = fresh.trusted_decs_of(&p1);
        assert!(less.is_empty());
        assert!(same.is_empty());
        // The original system still returns its two trusted DECs.
        let (less, same) = sys.trusted_decs_of(&p1);
        assert_eq!(less.len() + same.len(), 2);
        sys.set_trust(&p1, TrustLevel::Same, &p3).unwrap();
    }

    #[test]
    fn extended_schema_includes_dec_relations() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let schema = sys.extended_schema(&p1).unwrap();
        assert!(schema.contains("R1"));
        assert!(schema.contains("R2"));
        assert!(schema.contains("R3"));
        let p2 = PeerId::new("P2");
        let schema2 = sys.extended_schema(&p2).unwrap();
        assert!(schema2.contains("R2"));
        assert!(!schema2.contains("R1"));
    }

    #[test]
    fn relations_less_and_same_follow_trust() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        assert_eq!(sys.relations_less(&p1), BTreeSet::from(["R2".to_string()]));
        assert_eq!(sys.relations_same(&p1), BTreeSet::from(["R3".to_string()]));
    }

    #[test]
    fn restrict_to_peer_keeps_own_relations() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let global = sys.global_instance().unwrap();
        let restricted = sys.restrict_to_peer(&global, &p1).unwrap();
        assert!(restricted.contains_relation("R1"));
        assert!(!restricted.contains_relation("R2"));
    }

    #[test]
    fn trust_relation_accessors() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let p2 = PeerId::new("P2");
        assert_eq!(sys.trust().level(&p1, &p2), Some(TrustLevel::Less));
        assert_eq!(sys.trust().level(&p2, &p1), None);
        assert_eq!(
            sys.trust().more_trusted_than_self(&p1),
            BTreeSet::from([p2])
        );
        assert!(!sys.trust().is_empty());
    }

    #[test]
    fn local_ics_attach_to_peers() {
        let mut sys = example1_system();
        let p1 = PeerId::new("P1");
        sys.add_local_ic(&p1, constraints::builders::key_denial("fd", "R1").unwrap())
            .unwrap();
        assert_eq!(sys.peer(&p1).unwrap().local_ics.len(), 1);
        assert!(sys
            .add_local_ic(
                &PeerId::new("ZZ"),
                constraints::builders::key_denial("fd", "R1").unwrap()
            )
            .is_err());
    }

    #[test]
    fn delete_removes_tuples_and_validates() {
        let mut sys = example1_system();
        let p1 = PeerId::new("P1");
        assert!(sys.delete(&p1, "R1", &Tuple::strs(["a", "b"])).unwrap());
        assert!(!sys.delete(&p1, "R1", &Tuple::strs(["a", "b"])).unwrap());
        assert!(sys.delete(&p1, "R2", &Tuple::strs(["c", "d"])).is_err());
        assert!(sys
            .delete(&PeerId::new("Z"), "R1", &Tuple::strs(["a", "b"]))
            .is_err());
    }

    #[test]
    fn apply_delta_is_validated_and_atomic() {
        use relalg::database::GroundAtom;
        use relalg::Delta;
        let mut sys = example1_system();
        let p1 = PeerId::new("P1");
        let good = Delta::from_changes(
            [GroundAtom::new("R1", Tuple::strs(["n", "m"]))],
            [GroundAtom::new("R1", Tuple::strs(["a", "b"]))],
        );
        sys.apply_delta(&p1, &good).unwrap();
        let inst = &sys.peer(&p1).unwrap().instance;
        assert!(inst.holds("R1", &Tuple::strs(["n", "m"])));
        assert!(!inst.holds("R1", &Tuple::strs(["a", "b"])));
        // A delta touching a foreign relation is rejected before any change.
        let bad = Delta::from_changes(
            [
                GroundAtom::new("R1", Tuple::strs(["p", "q"])),
                GroundAtom::new("R2", Tuple::strs(["p", "q"])),
            ],
            [],
        );
        assert!(sys.apply_delta(&p1, &bad).is_err());
        assert!(!sys
            .peer(&p1)
            .unwrap()
            .instance
            .holds("R1", &Tuple::strs(["p", "q"])));
        // An arity mismatch is also caught before anything is applied.
        let bad_arity = Delta::from_changes(
            [
                GroundAtom::new("R1", Tuple::strs(["ok", "row"])),
                GroundAtom::new("R1", Tuple::strs(["just-one"])),
            ],
            [],
        );
        assert!(sys.apply_delta(&p1, &bad_arity).is_err());
        assert!(!sys
            .peer(&p1)
            .unwrap()
            .instance
            .holds("R1", &Tuple::strs(["ok", "row"])));
    }

    #[test]
    fn dependency_closure_follows_dec_edges() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let p2 = PeerId::new("P2");
        let p3 = PeerId::new("P3");
        assert_eq!(
            sys.dependencies_of(&p1),
            BTreeSet::from([p1.clone(), p2.clone(), p3.clone()])
        );
        assert_eq!(sys.dependencies_of(&p2), BTreeSet::from([p2.clone()]));
        assert_eq!(sys.dependencies_of(&p3), BTreeSet::from([p3.clone()]));
        // Touching P2 affects P1 (whose DECs read P2) and P2 itself, not P3.
        assert_eq!(
            sys.affected_by(&BTreeSet::from([p2.clone()])),
            BTreeSet::from([p1.clone(), p2.clone()])
        );
        // Touching P1 affects only P1: nobody owns a DEC towards it.
        assert_eq!(
            sys.affected_by(&BTreeSet::from([p1.clone()])),
            BTreeSet::from([p1])
        );
    }

    #[test]
    fn dependency_closure_is_transitive_over_chains() {
        let mut sys = P2PSystem::new();
        for p in ["A", "B", "C"] {
            sys.add_peer(p).unwrap();
        }
        let (a, b, c) = (PeerId::new("A"), PeerId::new("B"), PeerId::new("C"));
        for (peer, rel) in [(&a, "RA"), (&b, "RB"), (&c, "RC")] {
            sys.add_relation(peer, RelationSchema::new(rel, &["x"]))
                .unwrap();
        }
        sys.add_dec(
            &a,
            &b,
            constraints::builders::full_inclusion("dab", "RB", "RA", 1).unwrap(),
        )
        .unwrap();
        sys.add_dec(
            &b,
            &c,
            constraints::builders::full_inclusion("dbc", "RC", "RB", 1).unwrap(),
        )
        .unwrap();
        assert_eq!(
            sys.dependencies_of(&a),
            BTreeSet::from([a.clone(), b.clone(), c.clone()])
        );
        // A change to C ripples back to everyone upstream of it.
        assert_eq!(
            sys.affected_by(&BTreeSet::from([c.clone()])),
            BTreeSet::from([a, b, c])
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(PeerId::new("P1").to_string(), "P1");
        assert_eq!(TrustLevel::Less.to_string(), "less");
        let sys = example1_system();
        let dec_text = sys.decs()[0].to_string();
        assert!(dec_text.contains("Σ(P1, P2)"));
    }
}

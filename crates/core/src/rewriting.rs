//! First-order query rewriting (the Example 2 mechanism).
//!
//! For a restricted — but practically common — class of DECs, peer consistent
//! answers can be obtained by rewriting the original query `Q ∈ L(P)` into a
//! new first-order query `Q''` over the *original* material instances and
//! evaluating it directly, with no repair or answer-set computation at all:
//!
//! * a full inclusion dependency `∀x̄ (R_Q(x̄) → R_P(x̄))` towards a **more
//!   trusted** peer `Q` contributes a *union*: every occurrence of `R_P(t̄)`
//!   in the query becomes `R_P(t̄) ∨ R_Q(t̄)` (the data is virtually imported);
//! * an equality-generating DEC `∀x y z (R_P(x, y) ∧ R_T(x, z) → y = z)`
//!   towards a **same-trusted** peer `T` contributes a *guard* on the
//!   original `R_P` tuples: `R_P(x, y)` survives only if every conflicting
//!   `R_T(x, z)` is itself doomed — i.e. unless the key `x` is "protected" by
//!   a more-trusted import that forces some `R_P(x, ·)` tuple to stay, in
//!   which case the `R_T` tuple must be deleted instead and the guard is
//!   vacuous.
//!
//! Applied to Example 1 this produces exactly the paper's rewriting (1):
//!
//! ```text
//! Q'': [R1(x, y) ∧ ∀z1 (R3(x, z1) ∧ ¬∃z2 R2(x, z2) → z1 = y)] ∨ R2(x, y)
//! ```
//!
//! The mechanism is *sound but not complete* in general — the paper notes
//! that "a FO query rewriting approach to P2P query answering is bound to
//! have important limitations" (Section 2) — so [`rewrite_query`] refuses
//! queries or DEC configurations outside the supported fragment with
//! [`CoreError::Unsupported`], and callers fall back to the answer-set
//! mechanism.

use crate::error::CoreError;
use crate::system::{P2PSystem, PeerId};
use crate::Result;
use constraints::{Constraint, ConstraintClass, ConstraintHead};
use relalg::query::{Binding, Formula, QueryEvaluator, Term};
use relalg::Tuple;

/// A compiled rewriting for one peer: how each of the peer's relations is
/// expanded with imports and guards.
#[derive(Debug, Clone, Default)]
pub(crate) struct RelationRewrite {
    /// Relations (of more trusted peers) whose full contents are imported.
    imports: Vec<String>,
    /// Conflicting relations (of same-trusted peers) from equality-generating
    /// DECs of the form `R_P(x, y) ∧ R_T(x, z) → y = z`.
    conflicts: Vec<String>,
}

/// Rewrite a query posed to `peer` into a query over the original material
/// instances whose standard answers are the peer consistent answers.
///
/// Errors with [`CoreError::Unsupported`] when the peer's trusted DECs or the
/// query fall outside the supported fragment (see the module docs).
pub fn rewrite_query(system: &P2PSystem, peer: &PeerId, query: &Formula) -> Result<Formula> {
    let peer_data = system.peer(peer)?;
    // Only positive (∧ / ∨ / ∃) queries over the peer's own relations are
    // supported: rewriting under negation is not sound for this recipe.
    ensure_positive(query)?;
    for relation in query.relations() {
        if !peer_data.schema.contains(&relation) {
            return Err(CoreError::UnknownRelation {
                peer: peer.to_string(),
                relation,
            });
        }
    }
    let rewrites = compile_rewrites(system, peer)?;
    Ok(rewrite_formula(query, &rewrites))
}

/// Compile the per-relation rewrites from the peer's trusted DECs, refusing
/// configurations outside the rewritable class (the Example 2 fragment:
/// full inclusion DECs towards more-trusted peers, binary key-agreement DECs
/// towards same-trusted peers, no local ICs).
pub(crate) fn compile_rewrites(
    system: &P2PSystem,
    peer: &PeerId,
) -> Result<std::collections::BTreeMap<String, RelationRewrite>> {
    let peer_data = system.peer(peer)?;
    if !peer_data.local_ics.is_empty() {
        return Err(CoreError::Unsupported(
            "FO rewriting does not handle local integrity constraints; use the ASP mechanism"
                .to_string(),
        ));
    }
    let (less, same) = system.trusted_decs_of(peer);
    let mut rewrites: std::collections::BTreeMap<String, RelationRewrite> =
        std::collections::BTreeMap::new();
    for dec in less {
        let target = inclusion_target(&dec.constraint, peer_data, system, &dec.other)?;
        match target {
            Some((source, target)) => {
                rewrites.entry(target).or_default().imports.push(source);
            }
            None => {
                return Err(CoreError::Unsupported(format!(
                    "DEC `{}` is not a full inclusion dependency into one of the peer's relations",
                    dec.constraint.name
                )))
            }
        }
    }
    for dec in same {
        let conflict = key_agreement_shape(&dec.constraint, peer_data)?;
        match conflict {
            Some((own, other)) => {
                rewrites.entry(own).or_default().conflicts.push(other);
            }
            None => {
                return Err(CoreError::Unsupported(format!(
                    "DEC `{}` is not a binary key-agreement constraint; use the ASP mechanism",
                    dec.constraint.name
                )))
            }
        }
    }
    Ok(rewrites)
}

/// Static rewritability check: does the peer's DEC/trust/IC configuration
/// fall in the fragment [`rewrite_query`] supports, independent of any
/// particular query? [`crate::engine::Strategy::Auto`] uses this to decide
/// between rewriting and the ASP mechanism before running anything.
pub fn supports_peer(system: &P2PSystem, peer: &PeerId) -> bool {
    matches!(
        crate::analyze::classify_rewritability(system, peer),
        Ok(crate::analyze::RewriteVerdict::Rewritable)
    )
}

/// Query-side companion of [`supports_peer`]: is the query in the positive
/// existential fragment the rewriting handles?
pub fn supports_query(query: &Formula) -> bool {
    ensure_positive(query).is_ok()
}

/// Check that a query is built from atoms, conjunction, disjunction and
/// existential quantification only.
fn ensure_positive(query: &Formula) -> Result<()> {
    match query {
        Formula::True | Formula::False | Formula::Atom { .. } | Formula::Compare { .. } => Ok(()),
        Formula::And(parts) | Formula::Or(parts) => parts.iter().try_for_each(ensure_positive),
        Formula::Exists(_, inner) => ensure_positive(inner),
        Formula::Not(_) | Formula::Implies(_, _) | Formula::Forall(_, _) => {
            Err(CoreError::Unsupported(
                "FO rewriting supports positive existential queries only; use the ASP mechanism"
                    .to_string(),
            ))
        }
    }
}

/// Recognize a full inclusion dependency `R_other(x̄) → R_peer(x̄)` and return
/// `(source, target)` relation names.
pub(crate) fn inclusion_target(
    constraint: &Constraint,
    peer: &crate::system::Peer,
    system: &P2PSystem,
    other: &PeerId,
) -> Result<Option<(String, String)>> {
    if constraint.class() != ConstraintClass::Universal
        || constraint.body.len() != 1
        || !constraint.conditions.is_empty()
    {
        return Ok(None);
    }
    let head_atoms = match &constraint.head {
        ConstraintHead::Atoms(atoms) if atoms.len() == 1 => atoms,
        _ => return Ok(None),
    };
    let body = &constraint.body[0];
    let head = &head_atoms[0];
    // The body relation must belong to the other (more trusted) peer and the
    // head relation to the queried peer, with identical variable vectors.
    let other_peer = system.peer(other)?;
    if !other_peer.schema.contains(&body.relation) || !peer.schema.contains(&head.relation) {
        return Ok(None);
    }
    if body.terms != head.terms || body.terms.iter().any(|t| !t.is_var()) {
        return Ok(None);
    }
    Ok(Some((body.relation.clone(), head.relation.clone())))
}

/// Recognize the key-agreement shape `R_peer(x, y) ∧ R_other(x, z) → y = z`
/// and return `(peer_relation, other_relation)`.
pub(crate) fn key_agreement_shape(
    constraint: &Constraint,
    peer: &crate::system::Peer,
) -> Result<Option<(String, String)>> {
    if constraint.class() != ConstraintClass::EqualityGenerating || constraint.body.len() != 2 {
        return Ok(None);
    }
    let (l, r) = match &constraint.head {
        ConstraintHead::Equality(Term::Var(l), Term::Var(r)) => (l.clone(), r.clone()),
        _ => return Ok(None),
    };
    let a = &constraint.body[0];
    let b = &constraint.body[1];
    if a.terms.len() != 2 || b.terms.len() != 2 {
        return Ok(None);
    }
    // Shared key variable in the first position, value variables equated.
    let shared_key = a.terms[0] == b.terms[0] && a.terms[0].is_var();
    let values_equated = (a.terms[1] == Term::Var(l.clone()) && b.terms[1] == Term::Var(r.clone()))
        || (a.terms[1] == Term::Var(r.clone()) && b.terms[1] == Term::Var(l));
    if !shared_key || !values_equated {
        return Ok(None);
    }
    // One side is the peer's relation, the other the same-trusted peer's.
    if peer.schema.contains(&a.relation) && !peer.schema.contains(&b.relation) {
        Ok(Some((a.relation.clone(), b.relation.clone())))
    } else if peer.schema.contains(&b.relation) && !peer.schema.contains(&a.relation) {
        Ok(Some((b.relation.clone(), a.relation.clone())))
    } else {
        Ok(None)
    }
}

/// Apply the per-relation rewrites to every atom of the query.
fn rewrite_formula(
    query: &Formula,
    rewrites: &std::collections::BTreeMap<String, RelationRewrite>,
) -> Formula {
    match query {
        Formula::Atom { relation, terms } => match rewrites.get(relation) {
            None => query.clone(),
            Some(rw) => rewrite_atom(relation, terms, rw),
        },
        Formula::And(parts) => {
            Formula::and(parts.iter().map(|p| rewrite_formula(p, rewrites)).collect())
        }
        Formula::Or(parts) => {
            Formula::or(parts.iter().map(|p| rewrite_formula(p, rewrites)).collect())
        }
        Formula::Exists(vars, inner) => {
            Formula::Exists(vars.clone(), Box::new(rewrite_formula(inner, rewrites)))
        }
        other => other.clone(),
    }
}

/// Rewrite a single atom `R_P(t̄)` according to its imports and guards.
fn rewrite_atom(relation: &str, terms: &[Term], rw: &RelationRewrite) -> Formula {
    // Fresh variable names that cannot clash with user variables.
    let key_term = terms[0].clone();
    let value_term = terms.get(1).cloned().unwrap_or_else(|| key_term.clone());

    // Guarded original atom: R_P(t̄) ∧ for every conflict relation T:
    //   ∀z1 (T(key, z1) ∧ ¬protected(key) → z1 = value)
    // where protected(key) = ∃z2 S(key, z2) for every import source S.
    let mut guarded = vec![Formula::atom_terms(relation.to_string(), terms.to_vec())];
    for (ci, conflict) in rw.conflicts.iter().enumerate() {
        let z1 = format!("_Z1_{ci}");
        let protection = Formula::or(
            rw.imports
                .iter()
                .enumerate()
                .map(|(ii, import)| {
                    let z2 = format!("_Z2_{ci}_{ii}");
                    Formula::exists(
                        vec![z2.clone()],
                        Formula::atom_terms(import.clone(), vec![key_term.clone(), Term::var(z2)]),
                    )
                })
                .collect(),
        );
        let antecedent = Formula::and(vec![
            Formula::atom_terms(
                conflict.clone(),
                vec![key_term.clone(), Term::var(z1.clone())],
            ),
            Formula::not(protection),
        ]);
        guarded.push(Formula::forall(
            vec![z1.clone()],
            Formula::implies(antecedent, Formula::eq(Term::var(z1), value_term.clone())),
        ));
    }

    // Imported disjuncts: the more-trusted sources contribute their tuples
    // unconditionally.
    let mut disjuncts = vec![Formula::and(guarded)];
    for import in &rw.imports {
        disjuncts.push(Formula::atom_terms(import.clone(), terms.to_vec()));
    }
    Formula::or(disjuncts)
}

/// Evaluate whether a specific ground tuple is an answer of the rewritten
/// query (used by tests and the harness for spot checks).
pub fn is_answer_by_rewriting(
    system: &P2PSystem,
    peer: &PeerId,
    query: &Formula,
    free_vars: &[String],
    tuple: &Tuple,
) -> Result<bool> {
    let rewritten = rewrite_query(system, peer, query)?;
    let global = system.global_instance()?;
    let evaluator = QueryEvaluator::new(&global);
    let mut binding = Binding::new();
    for (var, value) in free_vars.iter().zip(tuple.iter()) {
        binding.insert(var.clone(), value.clone());
    }
    Ok(evaluator.holds(&rewritten, &binding)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{QueryEngine, Strategy};
    use crate::pca::vars;
    use crate::system::example1_system;
    use std::collections::BTreeSet;

    /// Evaluate the rewritten query over the global instance (what the
    /// engine's rewriting strategy does, without its cache).
    fn answers_via_rewrite(
        system: &P2PSystem,
        peer: &PeerId,
        query: &Formula,
        free_vars: &[String],
    ) -> BTreeSet<Tuple> {
        let rewritten = rewrite_query(system, peer, query).unwrap();
        let global = system.global_instance().unwrap();
        QueryEvaluator::new(&global)
            .answers(&rewritten, free_vars)
            .unwrap()
    }

    #[test]
    fn example2_rewriting_produces_the_papers_answers() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let q = Formula::atom("R1", vec!["X", "Y"]);
        let rewritten = rewrite_query(&sys, &p1, &q).unwrap();
        assert_eq!(
            answers_via_rewrite(&sys, &p1, &q, &vars(&["X", "Y"])),
            BTreeSet::from([
                Tuple::strs(["a", "b"]),
                Tuple::strs(["c", "d"]),
                Tuple::strs(["a", "e"]),
            ])
        );
        // The rewritten query mentions both other peers' relations.
        let rels = rewritten.relations();
        assert!(rels.contains("R1"));
        assert!(rels.contains("R2"));
        assert!(rels.contains("R3"));
    }

    #[test]
    fn rewriting_agrees_with_solution_semantics_on_example1() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let engine = QueryEngine::builder(sys.clone())
            .strategy(Strategy::Naive)
            .build();
        for (q, fv) in [
            (Formula::atom("R1", vec!["X", "Y"]), vars(&["X", "Y"])),
            (
                Formula::exists(vec!["Y"], Formula::atom("R1", vec!["X", "Y"])),
                vars(&["X"]),
            ),
        ] {
            let semantic = engine.answer(&p1, &q, &fv).unwrap();
            assert_eq!(
                semantic.tuples,
                answers_via_rewrite(&sys, &p1, &q, &fv),
                "query {q}"
            );
        }
    }

    #[test]
    fn negated_queries_are_rejected() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let q = Formula::not(Formula::atom("R1", vec!["X", "Y"]));
        assert!(matches!(
            rewrite_query(&sys, &p1, &q),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn queries_over_foreign_relations_are_rejected() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let q = Formula::atom("R3", vec!["X", "Y"]);
        assert!(matches!(
            rewrite_query(&sys, &p1, &q),
            Err(CoreError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn referential_decs_are_not_supported_by_rewriting() {
        use crate::system::TrustLevel;
        use constraints::builders::mixed_referential;
        use relalg::RelationSchema;

        let mut sys = P2PSystem::new();
        sys.add_peer("P").unwrap();
        sys.add_peer("Q").unwrap();
        let p = PeerId::new("P");
        let q = PeerId::new("Q");
        for (peer, rel) in [(&p, "R1"), (&p, "R2"), (&q, "S1"), (&q, "S2")] {
            sys.add_relation(peer, RelationSchema::new(rel, &["x", "y"]))
                .unwrap();
        }
        sys.add_dec(
            &p,
            &q,
            mixed_referential("sigma3", "R1", "S1", "R2", "S2").unwrap(),
        )
        .unwrap();
        sys.set_trust(&p, TrustLevel::Less, &q).unwrap();
        let query = Formula::atom("R1", vec!["X", "Y"]);
        assert!(matches!(
            rewrite_query(&sys, &p, &query),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn is_answer_spot_check() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let q = Formula::atom("R1", vec!["X", "Y"]);
        assert!(is_answer_by_rewriting(
            &sys,
            &p1,
            &q,
            &vars(&["X", "Y"]),
            &Tuple::strs(["a", "b"])
        )
        .unwrap());
        assert!(!is_answer_by_rewriting(
            &sys,
            &p1,
            &q,
            &vars(&["X", "Y"]),
            &Tuple::strs(["s", "t"])
        )
        .unwrap());
    }

    #[test]
    fn rewriting_without_decs_is_identity() {
        let mut sys = P2PSystem::new();
        sys.add_peer("A").unwrap();
        let a = PeerId::new("A");
        sys.add_relation(&a, relalg::RelationSchema::new("R", &["x"]))
            .unwrap();
        sys.insert(&a, "R", Tuple::strs(["v"])).unwrap();
        let q = Formula::atom("R", vec!["X"]);
        let rewritten = rewrite_query(&sys, &a, &q).unwrap();
        assert_eq!(rewritten, q);
    }

    #[test]
    fn local_ics_disable_rewriting() {
        let mut sys = example1_system();
        let p1 = PeerId::new("P1");
        sys.add_local_ic(&p1, constraints::builders::key_denial("fd", "R1").unwrap())
            .unwrap();
        let q = Formula::atom("R1", vec!["X", "Y"]);
        assert!(matches!(
            rewrite_query(&sys, &p1, &q),
            Err(CoreError::Unsupported(_))
        ));
    }
}

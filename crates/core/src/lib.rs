//! # pdes-core — peer-to-peer data exchange systems
//!
//! A faithful implementation of *Bertossi & Bravo, "Query Answering in
//! Peer-to-Peer Data Exchange Systems" (EDBT 2004 workshops)*:
//!
//! * [`system`] — the framework of Definition 2: peers, schemas, instances,
//!   local integrity constraints, data exchange constraints (DECs) and the
//!   trust relation;
//! * [`solution`] — the solutions of a peer (Definition 4, direct case) as
//!   two-stage minimal repairs of the global instance;
//! * [`pca`] — peer-consistent-answer helpers (the semantics of
//!   Definition 5 itself is served by [`engine::Strategy::Naive`]);
//! * [`rewriting`] — the first-order query rewriting mechanism of Example 2
//!   for inclusion + key-agreement DECs;
//! * [`asp`] — answer-set-programming specifications of the solutions: the
//!   annotation-based generator (Section 4.2 / appendix style), the paper's
//!   verbatim programs, and the transitive composition of Section 4.3;
//! * [`engine`] — the unified [`engine::QueryEngine`] facade serving every
//!   mechanism, with per-slice memoization and relevance-driven grounding;
//! * [`store`] — the [`store::PeerStore`] trait through which the engine and
//!   every other layer reach peer state, with
//!   [`store::InProcessStore`] as the canonical single-process
//!   implementation (the sharded runtime lives in the `pdes-store` crate).
//!
//! ## Quickstart
//!
//! All four mechanisms are served by one facade, [`engine::QueryEngine`]:
//!
//! ```
//! use pdes_core::engine::{QueryEngine, Strategy};
//! use pdes_core::pca::vars;
//! use pdes_core::system::{example1_system, PeerId};
//! use relalg::query::Formula;
//!
//! let engine = QueryEngine::builder(example1_system())
//!     .strategy(Strategy::Auto)
//!     .build();
//! let query = Formula::atom("R1", vec!["X", "Y"]);
//! let answers = engine
//!     .answer(&PeerId::new("P1"), &query, &vars(&["X", "Y"]))
//!     .unwrap();
//! assert_eq!(answers.len(), 3); // (a,b), (c,d), (a,e)
//! ```

pub mod analyze;
pub mod asp;
pub mod engine;
pub mod error;
pub mod pca;
pub mod rewriting;
pub mod solution;
pub mod store;
pub mod system;

pub use analyze::{classify_rewritability, Diagnostic, Location, Report, RewriteVerdict, Severity};
pub use engine::{
    AnsweringStrategy, Answers, CacheMetrics, EngineStats, Provenance, Query, QueryEngine,
    QueryEngineBuilder, Strategy, StrategyKind,
};
pub use error::CoreError;
pub use rewriting::rewrite_query;
pub use solution::{solutions_for, Solution, SolutionOptions, SolutionStats};
pub use store::{InProcessStore, MvccStats, PeerStore, Snapshot, VersionMap};
pub use system::{example1_system, Dec, P2PSystem, Peer, PeerId, TrustLevel, TrustRelation};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, CoreError>;

//! # pdes-core — peer-to-peer data exchange systems
//!
//! A faithful implementation of *Bertossi & Bravo, "Query Answering in
//! Peer-to-Peer Data Exchange Systems" (EDBT 2004 workshops)*:
//!
//! * [`system`] — the framework of Definition 2: peers, schemas, instances,
//!   local integrity constraints, data exchange constraints (DECs) and the
//!   trust relation;
//! * [`solution`] — the solutions of a peer (Definition 4, direct case) as
//!   two-stage minimal repairs of the global instance;
//! * [`pca`] — peer consistent answers (Definition 5) by solution
//!   enumeration (the semantic reference / naive baseline);
//! * [`rewriting`] — the first-order query rewriting mechanism of Example 2
//!   for inclusion + key-agreement DECs;
//! * [`asp`] — answer-set-programming specifications of the solutions: the
//!   annotation-based generator (Section 4.2 / appendix style), the paper's
//!   verbatim programs, and the transitive composition of Section 4.3;
//! * [`answer`] — peer consistent answers by cautious reasoning over the
//!   specification programs (the paper's general mechanism).
//!
//! ## Quickstart
//!
//! ```
//! use pdes_core::system::example1_system;
//! use pdes_core::system::PeerId;
//! use pdes_core::answer::answers_via_asp;
//! use pdes_core::pca::vars;
//! use relalg::query::Formula;
//! use datalog::SolverConfig;
//!
//! let system = example1_system();
//! let query = Formula::atom("R1", vec!["X", "Y"]);
//! let result = answers_via_asp(
//!     &system,
//!     &PeerId::new("P1"),
//!     &query,
//!     &vars(&["X", "Y"]),
//!     SolverConfig::default(),
//! )
//! .unwrap();
//! assert_eq!(result.answers.len(), 3); // (a,b), (c,d), (a,e)
//! ```

pub mod answer;
pub mod asp;
pub mod error;
pub mod pca;
pub mod rewriting;
pub mod solution;
pub mod system;

pub use answer::{answers_via_asp, answers_via_transitive_asp, AspAnswer};
pub use error::CoreError;
pub use pca::{peer_consistent_answers, PcaResult};
pub use rewriting::{answers_by_rewriting, rewrite_query, RewritingAnswer};
pub use solution::{solutions_for, Solution, SolutionOptions};
pub use system::{example1_system, Dec, P2PSystem, Peer, PeerId, TrustLevel, TrustRelation};

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, CoreError>;

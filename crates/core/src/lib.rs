//! # pdes-core — peer-to-peer data exchange systems
//!
//! A faithful implementation of *Bertossi & Bravo, "Query Answering in
//! Peer-to-Peer Data Exchange Systems" (EDBT 2004 workshops)*:
//!
//! * [`system`] — the framework of Definition 2: peers, schemas, instances,
//!   local integrity constraints, data exchange constraints (DECs) and the
//!   trust relation;
//! * [`solution`] — the solutions of a peer (Definition 4, direct case) as
//!   two-stage minimal repairs of the global instance;
//! * [`pca`] — peer consistent answers (Definition 5) by solution
//!   enumeration (the semantic reference / naive baseline);
//! * [`rewriting`] — the first-order query rewriting mechanism of Example 2
//!   for inclusion + key-agreement DECs;
//! * [`asp`] — answer-set-programming specifications of the solutions: the
//!   annotation-based generator (Section 4.2 / appendix style), the paper's
//!   verbatim programs, and the transitive composition of Section 4.3;
//! * [`answer`] — peer consistent answers by cautious reasoning over the
//!   specification programs (the paper's general mechanism).
//!
//! ## Quickstart
//!
//! All four mechanisms are served by one facade, [`engine::QueryEngine`]:
//!
//! ```
//! use pdes_core::engine::{QueryEngine, Strategy};
//! use pdes_core::pca::vars;
//! use pdes_core::system::{example1_system, PeerId};
//! use relalg::query::Formula;
//!
//! let engine = QueryEngine::builder(example1_system())
//!     .strategy(Strategy::Auto)
//!     .build();
//! let query = Formula::atom("R1", vec!["X", "Y"]);
//! let answers = engine
//!     .answer(&PeerId::new("P1"), &query, &vars(&["X", "Y"]))
//!     .unwrap();
//! assert_eq!(answers.len(), 3); // (a,b), (c,d), (a,e)
//! ```

pub mod answer;
pub mod asp;
pub mod engine;
pub mod error;
pub mod pca;
pub mod rewriting;
pub mod solution;
pub mod system;

pub use engine::{
    AnsweringStrategy, Answers, CacheMetrics, EngineStats, Provenance, Query, QueryEngine,
    QueryEngineBuilder, Strategy, StrategyKind,
};
pub use error::CoreError;
pub use solution::{solutions_for, Solution, SolutionOptions, SolutionStats};
pub use system::{example1_system, Dec, P2PSystem, Peer, PeerId, TrustLevel, TrustRelation};

// Legacy per-mechanism entry points and result structs, superseded by
// `engine::QueryEngine` / `engine::Answers`. Kept as deprecated re-exports
// for one release; the module-level paths (`pca::…`, `rewriting::…`,
// `answer::…`) remain available for code that wants a specific mechanism
// without the facade.
#[deprecated(
    since = "0.2.0",
    note = "use `engine::Answers` / `engine::Provenance::Asp`"
)]
pub use answer::AspAnswer;
#[deprecated(
    since = "0.2.0",
    note = "use `engine::QueryEngine` with `Strategy::Asp`"
)]
pub use answer::{answers_via_asp, answers_via_transitive_asp};
#[deprecated(
    since = "0.2.0",
    note = "use `engine::QueryEngine` with `Strategy::Naive`"
)]
pub use pca::peer_consistent_answers;
#[deprecated(
    since = "0.2.0",
    note = "use `engine::Answers` / `engine::Provenance::Naive`"
)]
pub use pca::PcaResult;
#[deprecated(
    since = "0.2.0",
    note = "use `engine::QueryEngine` with `Strategy::Rewriting`"
)]
pub use rewriting::answers_by_rewriting;
pub use rewriting::rewrite_query;
#[deprecated(
    since = "0.2.0",
    note = "use `engine::Answers` / `engine::Provenance::Rewriting`"
)]
pub use rewriting::RewritingAnswer;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, CoreError>;

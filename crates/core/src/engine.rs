//! The unified query-answering facade.
//!
//! The paper defines exactly one semantics — *peer consistent answers*
//! (Definition 5) — but offers several mechanisms for computing them: naive
//! solution enumeration, first-order query rewriting (Example 2), cautious
//! reasoning over the answer-set specification program (Section 3.2) and the
//! transitive composition of Section 4.3. Historically each mechanism was a
//! free function with its own signature and result struct; every caller had
//! to hand-roll dispatch. [`QueryEngine`] replaces that with one facade:
//!
//! ```
//! use pdes_core::engine::{QueryEngine, Strategy};
//! use pdes_core::pca::vars;
//! use pdes_core::system::{example1_system, PeerId};
//! use relalg::query::Formula;
//!
//! let engine = QueryEngine::builder(example1_system())
//!     .strategy(Strategy::Auto)
//!     .build();
//! let answers = engine
//!     .answer(&PeerId::new("P1"), &Formula::atom("R1", vec!["X", "Y"]), &vars(&["X", "Y"]))
//!     .unwrap();
//! assert_eq!(answers.len(), 3); // (a,b), (c,d), (a,e)
//! ```
//!
//! Every strategy returns the same [`Answers`] type: the certain tuples plus
//! per-run [`EngineStats`] (strategy chosen, grounding/solve timings, world
//! counts, cache behaviour) and a mechanism-specific [`Provenance`].
//!
//! ## Strategy selection
//!
//! [`Strategy::Auto`] (the default) statically checks whether the queried
//! peer's DECs fall in the rewritable class of Example 2 — full inclusion
//! DECs towards more-trusted peers plus binary key-agreement DECs towards
//! same-trusted peers, and no local ICs — via
//! [`crate::rewriting::supports_peer`], and picks the first-order rewriting
//! when they do (and the query is positive existential), falling back to the
//! general ASP mechanism otherwise.
//!
//! ## Memoization and relevance-driven grounding
//!
//! The engine owns its system, which makes preparation cacheable: the naive
//! strategy's enumerated solutions and the rewriting strategy's materialized
//! global instance are computed once per `(engine, peer)`, and the ASP
//! strategies' *grounded and solved* specification programs (decoded into
//! per-world databases) once per `(engine, peer, query slice)`. By default
//! the ASP strategies ground only the query-relevant slice of the
//! specification ([`datalog::relevance`], magic-sets-style pruning seeded by
//! the query's relations and bound constants —
//! [`QueryEngineBuilder::relevance_pruning`] turns it off), so the cache key
//! carries the slice: distinct queries over one peer no longer share an
//! over-wide grounding, while repeated queries of the same shape skip spec
//! generation, grounding and stable-model search entirely and only re-run
//! the cheap per-world query evaluation — the hot path of the benchmark
//! suite. [`EngineStats::grounded_rules`] / [`EngineStats::grounded_atoms`]
//! expose the instantiated slice sizes (tracked exactly by the CI smoke
//! gate).
//!
//! ## Live updates and incremental invalidation
//!
//! The system behind an engine is no longer frozen: [`QueryEngine::commit_delta`]
//! applies a [`relalg::Delta`] of ground atoms to one peer's instance, bumps
//! that peer's monotonically increasing *version*, and invalidates exactly
//! the memoized artifacts that could observe the change. Every cached
//! artifact records the `(peer, version)` stamp of the peers it was computed
//! from — the queried peer's *relevant-peer closure*
//! ([`crate::system::P2PSystem::dependencies_of`], the transitive closure of
//! DEC ownership edges) for the ASP strategies, and every peer for the naive
//! strategy (whose repair search draws existential witnesses from the global
//! active domain). A commit touching peer `P` therefore recomputes only the
//! artifacts of peers whose closure contains `P`; warm queries on peers
//! outside the closure stay warm, which [`CacheMetrics`] and
//! [`EngineStats::cache_hit`] make observable. The materialized global
//! instance is not invalidated at all: the committed delta is applied to it
//! incrementally (relation names are globally unique, so a peer-local delta
//! is also a global-instance delta). The `pdes-session` crate builds the
//! transactional `Session`/`Tx` surface on top of these primitives.
//!
//! ## Incremental re-grounding and cache budgeting
//!
//! An ASP artifact affected by a commit is not dropped either: commits
//! whose relations lie outside the artifact's grounded slice refresh its
//! version stamp in place (the slice provably cannot observe them), and
//! commits inside the slice turn it into a *stale* entry that keeps the
//! grounding's saturation state ([`datalog::incremental`]) plus the net
//! composition of the queued deltas. The next query over the slice repairs
//! the grounding — semi-naive insertion propagation, support-counted
//! deletion — re-deriving only the rules the deltas touched
//! ([`EngineStats::regrounded_rules`] vs. the full slice's
//! [`EngineStats::grounded_rules`]; [`CacheMetrics::patched`] counts the
//! repairs), then re-solves. [`QueryEngineBuilder::incremental_reground`]
//! restores the drop-and-re-ground behaviour.
//!
//! The memo map itself can be bounded:
//! [`QueryEngineBuilder::cache_capacity`] caps the estimated bytes of all
//! memoized artifacts with least-recently-used eviction
//! ([`CacheMetrics::evictions`]), so adversarial streams of distinct
//! bound-constant queries cannot grow the cache without bound. The estimate
//! is a deterministic element count, which lets the CI smoke gate pin
//! eviction counts exactly.
//!
//! Skipping the solver on repeat queries is sound because the appended query
//! rules of the legacy path are non-disjunctive, positive definitions layered
//! on top of the solution predicates: they never change the answer sets, so
//! cautious reasoning over `spec ∪ query` coincides with evaluating the query
//! over each decoded solution world and intersecting.
//!
//! ## Parallel execution
//!
//! The engine parallelizes at two independent levels, both driven by the
//! [`pdes_exec::ExecConfig`] installed via [`QueryEngineBuilder::exec`]
//! (sequential by default):
//!
//! * **Across queries** — [`QueryEngine::answer_batch`] partitions a batch by
//!   each query's relevant-peer closure ([`P2PSystem::dependencies_of`]) and
//!   answers closure-disjoint partitions concurrently. Queries whose closures
//!   intersect stay in one partition, in submission order, so they share
//!   preparations exactly like a sequential loop. The memo cache sits behind
//!   an `RwLock` (warm queries only read) and the lifetime counters are
//!   atomics, so concurrent partitions never serialize on bookkeeping.
//! * **Within a query** — stable-model search fans independent search
//!   subtrees out across workers ([`datalog::solve::solve_ground_with`]) and
//!   the per-world certain-answer intersection evaluates worlds in parallel.
//!   Both merges are order-insensitive (sort+dedup, set intersection), so
//!   answers are identical to the sequential path for every pool size.

use crate::error::CoreError;
use crate::pca::vars;
use crate::rewriting;
use crate::solution::{SolutionOptions, SolutionStats};
use crate::store::{InProcessStore, MvccStats, PeerStore, Snapshot};
use crate::system::{P2PSystem, PeerId};
use crate::Result;
use datalog::reason::AnswerSets;
use datalog::solve::solve_ground_recorded;
use datalog::{Grounder, SolverConfig};
use pdes_exec::{ExecConfig, Executor};
use relalg::query::{Formula, QueryEvaluator};
use relalg::{CqPlan, Database, Tuple};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

use pdes_obs::{duration_nanos, NullRecorder, Recorder, Span};

thread_local! {
    /// Set on threads that are already batch-partition workers: per-query
    /// fan-out (solver subtrees, per-world evaluation) is disabled there,
    /// because partition-level parallelism already owns the pool and nesting
    /// would only multiply threads, not progress. Scoped worker threads are
    /// created per `answer_batch` call and die with it, so the flag needs no
    /// reset.
    static IN_BATCH_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The strategy a [`QueryEngine`] uses to answer queries.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm so new
/// answering mechanisms can be added without a breaking release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum Strategy {
    /// Pick per query: rewriting when the peer's DECs are statically
    /// rewritable and the query is positive existential, ASP otherwise.
    #[default]
    Auto,
    /// Naive solution enumeration (Definitions 4 and 5) — the semantic
    /// reference.
    Naive,
    /// First-order query rewriting (Example 2) over the original instances.
    Rewriting,
    /// Cautious reasoning over the annotated specification program
    /// (Section 3.2 / 4.2).
    Asp,
    /// Cautious reasoning over the combined transitive program
    /// (Section 4.3).
    TransitiveAsp,
}

/// The mechanism that actually answered a query (the resolution of
/// [`Strategy::Auto`], or the fixed strategy itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StrategyKind {
    /// Naive solution enumeration.
    Naive,
    /// First-order rewriting.
    Rewriting,
    /// Direct ASP specification.
    Asp,
    /// Transitive (global) ASP specification.
    TransitiveAsp,
    /// A user-supplied [`AnsweringStrategy`].
    Custom,
}

impl StrategyKind {
    /// Stable human-readable label (also used by the benchmark tables).
    pub fn label(self) -> &'static str {
        match self {
            StrategyKind::Naive => "naive-solutions",
            StrategyKind::Rewriting => "rewriting",
            StrategyKind::Asp => "asp",
            StrategyKind::TransitiveAsp => "asp-transitive",
            StrategyKind::Custom => "custom",
        }
    }
}

/// Per-run statistics of one answered query.
///
/// Timings are stored as `u64` nanoseconds and exposed through
/// [`Duration`]-returning accessors ([`EngineStats::prepare_time`] and
/// friends) instead of ad-hoc `*_micros: u128` fields: every phase duration
/// is the *exact* value the engine's [`pdes_obs::Recorder`] saw for the
/// corresponding span, so a trace exported from a [`pdes_obs::TraceRecorder`]
/// can never disagree with the stats (asserted by the observability
/// integration tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "engine statistics are only useful when inspected"]
pub struct EngineStats {
    /// The mechanism that answered the query.
    pub strategy: StrategyKind,
    /// Whether the per-peer preparation (solution enumeration / grounding +
    /// solving / global instance) was served from the engine cache.
    pub cache_hit: bool,
    /// Preparation nanoseconds spent *this run* (0 on a cache hit).
    pub(crate) prepare_nanos: u64,
    /// Grounding nanoseconds (ASP strategies only).
    pub(crate) ground_nanos: u64,
    /// Stable-model search nanoseconds (ASP strategies only).
    pub(crate) solve_nanos: u64,
    /// Query evaluation nanoseconds.
    pub(crate) eval_nanos: u64,
    /// Nanoseconds the *original* (memoized) preparation cost, reported on
    /// cache hits; 0 on misses.
    pub(crate) cached_prepare_nanos: u64,
    /// Number of worlds the answer is certain over: solutions (naive),
    /// answer sets (ASP), or 1 (rewriting).
    pub worlds: usize,
    /// Ground rules instantiated for this query's preparation (ASP
    /// strategies; 0 elsewhere). With relevance pruning enabled this counts
    /// only the query-relevant slice — the deterministic counter the
    /// perf-smoke gate tracks exactly.
    pub grounded_rules: usize,
    /// Distinct ground atoms interned during the preparation (ASP
    /// strategies; 0 elsewhere).
    pub grounded_atoms: usize,
    /// Ground rules actually *re-derived* when this artifact was prepared:
    /// equals [`EngineStats::grounded_rules`] on a full (re-)grounding,
    /// strictly smaller when a stale artifact was repaired by the
    /// delta-driven incremental patch ([`datalog::incremental`]) — the
    /// warm-after-commit counter the perf-smoke gate tracks exactly.
    pub regrounded_rules: usize,
    /// When [`Strategy::Auto`] fell back to ASP for a *classifiable* reason,
    /// the diagnostic code of that reason (e.g.
    /// [`crate::analyze::codes::REWRITE_LOCAL_ICS`]); `None` for explicit
    /// strategies, rewritable peers, and queries outside the peer's schema
    /// (where no mechanism-level verdict applies).
    pub auto_reason: Option<&'static str>,
}

impl EngineStats {
    /// Preparation time spent by *this* run (solution enumeration /
    /// grounding + solving / global-instance materialization). Zero on a
    /// cache hit — see [`EngineStats::cached_prepare_time`] for what the hit
    /// saved.
    pub fn prepare_time(&self) -> Duration {
        Duration::from_nanos(self.prepare_nanos)
    }

    /// Grounding time (ASP strategies only; a sub-phase of
    /// [`EngineStats::prepare_time`]).
    pub fn ground_time(&self) -> Duration {
        Duration::from_nanos(self.ground_nanos)
    }

    /// Stable-model search time (ASP strategies only; a sub-phase of
    /// [`EngineStats::prepare_time`]).
    pub fn solve_time(&self) -> Duration {
        Duration::from_nanos(self.solve_nanos)
    }

    /// Query evaluation time (per-world evaluation + intersection).
    pub fn eval_time(&self) -> Duration {
        Duration::from_nanos(self.eval_nanos)
    }

    /// On a cache hit, the preparation time of the *original* run that
    /// populated the cache — what the hit saved. `None` on a miss, where
    /// [`EngineStats::prepare_time`] already reports the cost paid.
    pub fn cached_prepare_time(&self) -> Option<Duration> {
        self.cache_hit
            .then(|| Duration::from_nanos(self.cached_prepare_nanos))
    }

    /// Total engine time for this run: preparation (which contains grounding
    /// and solving as sub-phases) plus evaluation.
    pub fn total_time(&self) -> Duration {
        self.prepare_time() + self.eval_time()
    }
}

/// Mechanism-specific evidence attached to an [`Answers`] (the successor of
/// the removed `PcaResult` / `RewritingAnswer` / `AspAnswer` structs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Provenance {
    /// Solution enumeration: how many solutions, and the repair search
    /// statistics.
    Naive {
        /// Number of solutions of the queried peer.
        solution_count: usize,
        /// Two-stage repair search statistics.
        search: SolutionStats,
    },
    /// First-order rewriting: the rewritten query that was evaluated.
    Rewriting {
        /// The rewriting of the original query (Example 2's `Q''`).
        rewritten: Formula,
    },
    /// Cautious reasoning over the direct specification program.
    Asp {
        /// Number of answer sets (= solutions) of the specification.
        answer_set_count: usize,
        /// Branch nodes explored by the solver.
        branch_nodes: usize,
        /// Whether the HCF shift applied.
        used_shift: bool,
    },
    /// Cautious reasoning over the combined transitive program.
    TransitiveAsp {
        /// Number of answer sets of the combined program.
        answer_set_count: usize,
        /// Branch nodes explored by the solver.
        branch_nodes: usize,
        /// Whether the HCF shift applied.
        used_shift: bool,
    },
    /// A user-supplied strategy.
    Custom {
        /// The strategy's self-reported name.
        strategy: String,
    },
}

/// Cumulative cache behaviour of one engine, across every query and commit
/// it has served. Unlike the per-run [`EngineStats`], these counters
/// aggregate over the engine's lifetime, which is what the live-update
/// benchmarks report. A snapshot of the engine's internal counters, which
/// are atomics so that batch-parallel queries never under-count.
///
/// Marked `#[non_exhaustive]`: construct it via [`QueryEngine::metrics`] (or
/// `Default`); new counters can be added without a breaking release.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct CacheMetrics {
    /// Preparations served from the cache.
    pub hits: u64,
    /// Preparations that had to run (cold or invalidated).
    pub misses: u64,
    /// Memoized artifacts dropped or staled by invalidation or flushing.
    pub invalidated: u64,
    /// Committed update deltas.
    pub commits: u64,
    /// Stale artifacts repaired by the incremental re-grounding patch
    /// instead of a full re-ground.
    pub patched: u64,
    /// Artifacts evicted by the byte-budgeted LRU policy
    /// ([`QueryEngineBuilder::cache_capacity`]).
    pub evictions: u64,
}

/// The engine's live metric counters. Plain `u64` fields behind the cache
/// lock under-counted when concurrent batch partitions raced on the hit
/// path; atomics make every increment lock-free and loss-free.
#[derive(Debug, Default)]
struct MetricCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    commits: AtomicU64,
    patched: AtomicU64,
    evictions: AtomicU64,
}

impl MetricCounters {
    /// A consistent-enough snapshot for reporting (individual counters are
    /// exact; cross-counter skew is bounded by in-flight queries).
    fn snapshot(&self) -> CacheMetrics {
        CacheMetrics {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            patched: self.patched.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// The unified result of answering a query through the engine.
#[derive(Debug, Clone)]
#[must_use = "dropping query answers without reading them is almost always a bug"]
pub struct Answers {
    /// The peer consistent answers (certain tuples).
    pub tuples: BTreeSet<Tuple>,
    /// Per-run statistics.
    pub stats: EngineStats,
    /// Mechanism-specific evidence.
    pub provenance: Provenance,
}

impl Answers {
    /// Number of certain tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no tuple is certain.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Iterate over the certain tuples in order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }
}

/// One query of a batch: the queried peer, the formula posed in the peer's
/// own language, and the answer variables. The unit consumed by
/// [`QueryEngine::answer_batch`] and `pdes_session::Session::query`.
///
/// ```
/// use pdes_core::engine::{Query, QueryEngine};
/// use pdes_core::system::example1_system;
/// use relalg::query::Formula;
///
/// let engine = QueryEngine::builder(example1_system()).build();
/// let batch = vec![
///     Query::named("P1", Formula::atom("R1", vec!["X", "Y"]), &["X", "Y"]),
///     Query::named("P2", Formula::atom("R2", vec!["X", "Y"]), &["X", "Y"]),
/// ];
/// let answers = engine.answer_batch(&batch);
/// assert_eq!(answers.len(), 2);
/// assert!(answers.iter().all(|a| a.is_ok()));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The peer the query is posed to.
    pub peer: PeerId,
    /// The query formula (in `L(P)`).
    pub query: Formula,
    /// The answer variables.
    pub free_vars: Vec<String>,
}

impl Query {
    /// Construct a batch query.
    pub fn new(peer: PeerId, query: Formula, free_vars: Vec<String>) -> Self {
        Query {
            peer,
            query,
            free_vars,
        }
    }

    /// Convenience constructor: answer variables by name.
    pub fn named(peer: impl Into<PeerId>, query: Formula, free_vars: &[&str]) -> Self {
        Query::new(peer.into(), query, vars(free_vars))
    }
}

/// A pluggable answering mechanism. The four built-in strategies implement
/// this trait; downstream code can supply its own via
/// [`QueryEngineBuilder::custom_strategy`] (e.g. to try an approximation or
/// an external solver) and still get the unified [`Answers`] surface.
pub trait AnsweringStrategy: Send + Sync {
    /// Short identifying name (appears in [`Provenance::Custom`]).
    fn name(&self) -> &'static str;

    /// Can this strategy answer the given query to the given peer? The
    /// engine consults this before dispatching to a custom strategy
    /// (returning [`CoreError::Unsupported`] when it says no), and
    /// [`Strategy::Auto`] uses the rewriting strategy's answer to decide
    /// between rewriting and ASP. `answer` may still return an error for
    /// conditions only discoverable while answering.
    fn supports(&self, engine: &QueryEngine, peer: &PeerId, query: &Formula) -> bool;

    /// Compute the peer consistent answers.
    fn answer(
        &self,
        engine: &QueryEngine,
        peer: &PeerId,
        query: &Formula,
        free_vars: &[String],
    ) -> Result<Answers>;
}

/// Builder for [`QueryEngine`].
///
/// Every knob has a production-ready default; `build` cannot fail for the
/// built-in strategies:
///
/// ```
/// use pdes_core::engine::{QueryEngine, Strategy};
/// use pdes_core::pca::vars;
/// use pdes_core::system::{example1_system, PeerId};
/// use relalg::query::Formula;
///
/// let engine = QueryEngine::builder(example1_system())
///     .strategy(Strategy::Asp)          // pin one mechanism (default: Auto)
///     .cache_capacity(1 << 20)          // bound the memo cache to 1 MiB
///     .interned_data_plane(true)        // columnar id kernels (the default)
///     .build();
/// let answers = engine
///     .answer(&PeerId::new("P1"), &Formula::atom("R1", vec!["X", "Y"]), &vars(&["X", "Y"]))
///     .unwrap();
/// assert_eq!(answers.len(), 3);
/// ```
#[must_use = "a builder does nothing until `build` is called"]
pub struct QueryEngineBuilder {
    store: Arc<dyn PeerStore>,
    strategy: Strategy,
    custom: Option<Box<dyn AnsweringStrategy>>,
    solver_config: SolverConfig,
    solution_options: SolutionOptions,
    exec: ExecConfig,
    relevance_pruning: bool,
    incremental_reground: bool,
    interned_data_plane: bool,
    cache_capacity: Option<usize>,
    strict_analysis: bool,
    recorder: Option<Arc<dyn Recorder>>,
}

impl QueryEngineBuilder {
    /// Answer over `store` — the peer-state access point shared by every
    /// layer. Replaces the builder's current store; pass a
    /// `pdes-store` `ShardedStore` here to serve queries over peers
    /// partitioned across worker shards. [`QueryEngine::builder`] is the
    /// single-system shorthand (it wraps the system into an
    /// [`InProcessStore`]).
    pub fn store(mut self, store: Arc<dyn PeerStore>) -> Self {
        self.store = store;
        self
    }

    /// The default answering strategy (defaults to [`Strategy::Auto`]).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Configuration handed to the answer-set solver (ASP strategies).
    pub fn solver_config(mut self, config: SolverConfig) -> Self {
        self.solver_config = config;
        self
    }

    /// Options handed to the repair search (naive strategy).
    pub fn solution_options(mut self, options: SolutionOptions) -> Self {
        self.solution_options = options;
        self
    }

    /// Install a user-supplied strategy; it takes precedence over the
    /// configured [`Strategy`] for every query.
    pub fn custom_strategy(mut self, strategy: Box<dyn AnsweringStrategy>) -> Self {
        self.custom = Some(strategy);
        self
    }

    /// The parallel execution configuration: worker count for
    /// [`QueryEngine::answer_batch`] partitions, stable-model subtree search
    /// and per-world evaluation. Defaults to [`ExecConfig::sequential`], so
    /// an engine never spawns threads unless asked to.
    pub fn exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Shorthand for [`QueryEngineBuilder::exec`] with a deterministic pool
    /// of `workers` threads (`0` = one per available core).
    pub fn workers(self, workers: usize) -> Self {
        self.exec(ExecConfig::with_workers(workers))
    }

    /// Enable or disable relevance-driven grounding ([`datalog::relevance`])
    /// for the ASP strategies. On (the default), each query grounds only the
    /// program slice that can influence it, seeded from the query's bound
    /// constants where sound; off reproduces the legacy full grounding
    /// (used by the B10 benchmark and the pruned-vs-full property tests).
    pub fn relevance_pruning(mut self, enabled: bool) -> Self {
        self.relevance_pruning = enabled;
        self
    }

    /// Enable or disable delta-driven incremental re-grounding
    /// ([`datalog::incremental`]) for the ASP strategies. On (the default),
    /// [`QueryEngine::commit_delta`] upgrades invalidated `(peer, slice)`
    /// artifacts to *stale* entries carrying their saturation state, and the
    /// next query repairs them by re-deriving only the affected rules; off
    /// reproduces the drop-and-re-ground behaviour (the B11 benchmark's
    /// `invalidate` mode).
    pub fn incremental_reground(mut self, enabled: bool) -> Self {
        self.incremental_reground = enabled;
        self
    }

    /// Enable or disable the interned, columnar data plane. On (the
    /// default), prepared worlds are additionally indexed as columnar
    /// `u32` blocks against the store's [`SymbolTable`]
    /// ([`PeerStore::symbols`]): conjunctive queries evaluate with
    /// hash-join / semi-join kernels over ids (strings materialize only at
    /// the [`Answers`] boundary), ASP fact encoding aliases one shared
    /// `Arc<str>` per distinct constant, and the memo cache budgets
    /// *exact* interned-table sizes instead of element-count estimates.
    /// Off reproduces the legacy string path (the B15 benchmark's
    /// comparison baseline).
    pub fn interned_data_plane(mut self, enabled: bool) -> Self {
        self.interned_data_plane = enabled;
        self
    }

    /// Cap the memo cache at `bytes` bytes of prepared artifacts, evicting
    /// least-recently-used entries on overflow (counted in
    /// [`CacheMetrics::evictions`]). Unbounded by default. With the
    /// interned data plane on (the default) the budgeted quantity is the
    /// *exact* size of the interned columnar artifacts — deterministic and
    /// platform-independent (4 bytes per stored id plus fixed per-relation
    /// overheads), so eviction behaviour is reproducible in CI; the legacy
    /// path keeps the element-count estimate.
    pub fn cache_capacity(mut self, bytes: usize) -> Self {
        self.cache_capacity = Some(bytes);
        self
    }

    /// Refuse to construct the engine when the static analyzer
    /// ([`P2PSystem::analyze`]) reports *errors* over the system (warnings
    /// and infos never block). Off by default: the non-strict engine keeps
    /// today's behaviour, but still runs the analysis once and keeps the
    /// report inspectable via [`QueryEngine::analysis_report`].
    pub fn strict_analysis(mut self, enabled: bool) -> Self {
        self.strict_analysis = enabled;
        self
    }

    /// Install an observability [`Recorder`]. Every query the engine answers
    /// emits structured spans (`query`, `prepare`, `relevance`, `ground` /
    /// `patch`, `solve`, `decode`, `eval`, …) and counters (`cache.hit`,
    /// `cache.miss`, `solver.branch_nodes`, …) to it, and the recorder is
    /// threaded into the executor so parallel solver subtrees and batch
    /// partitions report too. Defaults to [`NullRecorder`], which keeps the
    /// hot path free of any buffering or locking; install a
    /// [`pdes_obs::TraceRecorder`] to collect a Chrome-traceable timeline
    /// plus latency histograms.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Finish the builder, running the static analyzer over the system.
    ///
    /// With [`QueryEngineBuilder::strict_analysis`] enabled, error-severity
    /// diagnostics make this fail with [`CoreError::AnalysisRejected`]
    /// carrying the rendered report. Without it, this never fails.
    pub fn try_build(self) -> Result<QueryEngine> {
        // The analyzer is topology-only (schemas, DECs, trust — never
        // instance data), so the store's local replica serves it without a
        // transport round-trip.
        let topology = self.store.topology().clone();
        let report = topology.analyze();
        if self.strict_analysis && !report.is_clean() {
            return Err(CoreError::AnalysisRejected {
                errors: report.error_count(),
                report: report.render(),
            });
        }
        let recorder: Arc<dyn Recorder> = self
            .recorder
            .unwrap_or_else(|| Arc::new(NullRecorder) as Arc<dyn Recorder>);
        let symbols = self.store.symbols();
        Ok(QueryEngine {
            store: self.store,
            topology,
            strategy: self.strategy,
            custom: self.custom,
            solver_config: self.solver_config,
            solution_options: self.solution_options,
            exec: Executor::new(self.exec).with_recorder(Arc::clone(&recorder)),
            recorder,
            relevance_pruning: self.relevance_pruning,
            incremental_reground: self.incremental_reground,
            interned_data_plane: self.interned_data_plane,
            symbols,
            cache_capacity: self.cache_capacity,
            analysis: report,
            cache: RwLock::new(EngineCache::default()),
            metrics: MetricCounters::default(),
            clock: AtomicU64::new(0),
            commit_lock: Mutex::new(()),
            patching: Mutex::new(BTreeSet::new()),
            patch_done: Condvar::new(),
        })
    }

    /// Finish the builder.
    ///
    /// # Panics
    ///
    /// Panics when [`QueryEngineBuilder::strict_analysis`] is enabled and
    /// the analyzer reports errors; use
    /// [`QueryEngineBuilder::try_build`] to handle that case. Without
    /// strict analysis (the default) this never panics.
    pub fn build(self) -> QueryEngine {
        self.try_build()
            .unwrap_or_else(|e| panic!("engine construction failed: {e}"))
    }
}

/// A version stamp: the per-peer versions an artifact was computed from.
type VersionStamp = BTreeMap<PeerId, u64>;

/// One memoized naive-strategy artifact (per peer).
struct NaiveEntry {
    /// The `(peer, version)` set this entry was computed from.
    stamp: VersionStamp,
    prepared: Arc<PreparedWorlds>,
    /// Deterministic size estimate for the byte-budgeted eviction policy.
    bytes: usize,
    /// Engine-clock tick of the last hit (LRU victim selection).
    last_used: AtomicU64,
}

/// One memoized ASP artifact (per `(peer, slice)`): the solved worlds, plus
/// — when incremental re-grounding is enabled — the grounding's saturation
/// state and the update deltas committed since the worlds were solved. An
/// entry with pending deltas is *stale*: its worlds are not served, but its
/// state lets the next query repair the grounding by patching only the
/// affected rules instead of re-grounding the slice.
struct AspEntry {
    /// The `(peer, version)` set the *worlds* were computed from. Commits
    /// that cannot touch the slice refresh the stamp in place (the worlds
    /// stay valid); commits that can leave it current too but queue their
    /// delta in `pending`.
    stamp: VersionStamp,
    prepared: Arc<PreparedWorlds>,
    /// The grounding's saturation state ([`datalog::IncrementalGround`]),
    /// kept for future patches. `None` when incremental re-grounding is
    /// disabled.
    state: Option<datalog::IncrementalGround>,
    /// Net per-peer deltas committed since `prepared` was solved (empty =
    /// the entry is valid). Composed, not merged: an insert-then-delete
    /// cancels.
    pending: BTreeMap<PeerId, relalg::Delta>,
    /// The specification program the entry was built from, retained (when
    /// incremental re-grounding is on) so the *committing* thread can patch
    /// and re-solve the artifact without the original query — the repair
    /// runs off the reader hot path ([`QueryEngine::commit_delta`]).
    spec: Option<Arc<SpecProgram>>,
    /// Deterministic size estimate (worlds + saturation state) for the
    /// byte-budgeted eviction policy.
    bytes: usize,
    /// Engine-clock tick of the last hit (LRU victim selection).
    last_used: AtomicU64,
}

impl AspEntry {
    /// Is this entry servable as-is (no queued deltas)?
    fn is_valid(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Per-peer prepared state shared by repeated queries. Behind an `RwLock`:
/// warm (hit-path) queries take the read lock only, so concurrent batch
/// partitions never serialize on each other's lookups; preparation inserts
/// and invalidation take the write lock. Lifetime counters live outside the
/// lock entirely (see [`MetricCounters`]).
#[derive(Default)]
struct EngineCache {
    /// Monotonically increasing per-peer versions (absent = 0, the
    /// construction-time instance).
    versions: BTreeMap<PeerId, u64>,
    /// Materialized global instance (rewriting strategy) plus the
    /// nanoseconds its original materialization cost (reported as
    /// [`EngineStats::cached_prepare_time`] on hits). Maintained
    /// incrementally across commits rather than invalidated.
    global: Option<(Arc<Database>, u64)>,
    /// Per-peer enumerated solutions, restricted to the peer (naive).
    naive: BTreeMap<PeerId, NaiveEntry>,
    /// Grounded + solved direct specification programs, keyed by peer plus
    /// the *canonical slice fingerprint*
    /// ([`datalog::RelevanceAnalysis::fingerprint`]): distinct queries over
    /// one peer no longer share an over-wide grounding, while queries whose
    /// slices coincide (same relations; bindings the analysis cannot apply)
    /// share one artifact.
    asp: BTreeMap<(PeerId, String), AspEntry>,
    /// Grounded + solved transitive programs, keyed like `asp`.
    transitive: BTreeMap<(PeerId, String), AspEntry>,
    /// Cheap query-shape key ([`QueryEngine::slice_key`]) → canonical slice
    /// fingerprint, per mechanism. Lets the warm path skip building the
    /// specification program: a repeated query resolves its alias and its
    /// artifact under the read lock alone. Aliases never need invalidation —
    /// a stale target simply misses (the artifact was dropped) and the slow
    /// path rewrites the alias.
    asp_alias: BTreeMap<(PeerId, String), String>,
    /// Alias map of the transitive mechanism.
    transitive_alias: BTreeMap<(PeerId, String), String>,
}

impl EngineCache {
    /// The version stamp for a set of relevant peers, under the current
    /// versions.
    fn stamp_for(&self, relevant: impl IntoIterator<Item = PeerId>) -> VersionStamp {
        relevant
            .into_iter()
            .map(|p| {
                let v = self.versions.get(&p).copied().unwrap_or(0);
                (p, v)
            })
            .collect()
    }

    /// The per-(peer, slice) artifact slot for the direct or transitive ASP
    /// mechanism.
    fn asp_slot(&mut self, transitive: bool) -> &mut BTreeMap<(PeerId, String), AspEntry> {
        if transitive {
            &mut self.transitive
        } else {
            &mut self.asp
        }
    }

    /// Read-only view of [`EngineCache::asp_slot`] (the hit path holds only
    /// the read lock).
    fn asp_slot_ref(&self, transitive: bool) -> &BTreeMap<(PeerId, String), AspEntry> {
        if transitive {
            &self.transitive
        } else {
            &self.asp
        }
    }

    /// The query-shape → fingerprint alias map of a mechanism.
    fn alias_slot(&mut self, transitive: bool) -> &mut BTreeMap<(PeerId, String), String> {
        if transitive {
            &mut self.transitive_alias
        } else {
            &mut self.asp_alias
        }
    }

    /// Read-only view of [`EngineCache::alias_slot`].
    fn alias_slot_ref(&self, transitive: bool) -> &BTreeMap<(PeerId, String), String> {
        if transitive {
            &self.transitive_alias
        } else {
            &self.asp_alias
        }
    }

    /// Is a stamp still current? (Belt-and-braces: eager invalidation on
    /// commit should make a stale stamp unobservable, but the check is
    /// cheap and makes the cache self-validating.)
    fn stamp_current(&self, stamp: &VersionStamp) -> bool {
        stamp
            .iter()
            .all(|(p, v)| self.versions.get(p).copied().unwrap_or(0) == *v)
    }

    /// Drop every memoized artifact whose version stamp mentions a touched
    /// peer (i.e. whose owning peer's relevant-peer closure intersects
    /// `touched`), stale or not. Returns how many artifacts were dropped.
    /// The global instance is left alone: callers either maintain it
    /// incrementally (commit) or drop it explicitly (external
    /// invalidation). [`QueryEngine::commit_delta`] does *not* use this —
    /// it stales patchable entries instead of dropping them.
    fn drop_stamped(&mut self, touched: &BTreeSet<PeerId>) -> u64 {
        let mut dropped = 0;
        self.naive.retain(|_, entry| {
            let keep = !entry.stamp.keys().any(|p| touched.contains(p));
            if !keep {
                dropped += 1;
            }
            keep
        });
        for slot in [&mut self.asp, &mut self.transitive] {
            slot.retain(|_, entry| {
                let keep = !entry.stamp.keys().any(|p| touched.contains(p));
                if !keep {
                    dropped += 1;
                }
                keep
            });
        }
        dropped
    }

    /// Total estimated bytes of memoized artifacts (the global instance is
    /// not budgeted — it is one instance, maintained incrementally, and
    /// every rewriting query needs it).
    fn total_bytes(&self) -> usize {
        self.naive.values().map(|e| e.bytes).sum::<usize>()
            + self.asp.values().map(|e| e.bytes).sum::<usize>()
            + self.transitive.values().map(|e| e.bytes).sum::<usize>()
    }
}

/// The decoded worlds of one peer under one mechanism, plus how long the
/// preparation took.
struct PreparedWorlds {
    /// One database per distinct world (solution / answer set).
    databases: Vec<Database>,
    /// World count before deduplication (matches the legacy result structs).
    worlds: usize,
    prepare_nanos: u64,
    ground_nanos: u64,
    solve_nanos: u64,
    /// Ground rules / atoms instantiated for this entry (ASP strategies).
    grounded_rules: usize,
    grounded_atoms: usize,
    /// Ground rules re-derived by the preparation: all of them on a full
    /// grounding, only the patched subset on an incremental repair.
    regrounded_rules: usize,
    /// Evidence template cloned into every answer served from this entry.
    provenance: Provenance,
    /// Interned columnar index of `databases` (one [`ColumnarDatabase`] per
    /// world, same order), built once per preparation when the engine's
    /// interned data plane is on. Conjunctive queries intersect over these
    /// id blocks instead of re-walking string tuples, and the memo cache
    /// budgets their *exact* size. `None` on the legacy path.
    columnar: Option<Vec<relalg::ColumnarDatabase>>,
}

impl PreparedWorlds {
    /// Deterministic, platform-independent size estimate (element counts
    /// only), mirroring [`datalog::IncrementalGround::approx_bytes`]. The
    /// legacy sizing, kept for `interned_data_plane(false)`.
    fn approx_bytes(&self) -> usize {
        let db_bytes = |db: &Database| -> usize {
            db.relations()
                .map(|rel| 64 + rel.iter().map(|t| 16 + 24 * t.arity()).sum::<usize>())
                .sum()
        };
        256 + self.databases.iter().map(db_bytes).sum::<usize>()
    }

    /// Bytes this entry charges against [`QueryEngineBuilder::cache_capacity`]:
    /// the *exact* interned columnar size when the columnar index exists
    /// ([`ColumnarDatabase::exact_bytes`] — 4 bytes per stored id plus fixed
    /// per-relation overheads), the legacy element-count estimate otherwise.
    fn bytes(&self) -> usize {
        match &self.columnar {
            Some(worlds) => 256 + worlds.iter().map(|db| db.exact_bytes()).sum::<usize>(),
            None => self.approx_bytes(),
        }
    }
}

/// The unified query-answering facade over a P2P data exchange system.
///
/// Construct with [`QueryEngine::builder`]; answer queries with
/// [`QueryEngine::answer`] (configured strategy) or
/// [`QueryEngine::answer_with`] (explicit strategy, sharing the same cache).
pub struct QueryEngine {
    /// Peer-state access point: the only way the engine reaches instances
    /// and applies deltas.
    store: Arc<dyn PeerStore>,
    /// Local topology replica (instances empty): closure queries, schema
    /// checks and strategy resolution never pay a transport round-trip.
    topology: P2PSystem,
    strategy: Strategy,
    custom: Option<Box<dyn AnsweringStrategy>>,
    solver_config: SolverConfig,
    solution_options: SolutionOptions,
    exec: Executor,
    recorder: Arc<dyn Recorder>,
    relevance_pruning: bool,
    incremental_reground: bool,
    interned_data_plane: bool,
    /// The store's symbol table ([`PeerStore::symbols`]): the single
    /// interning authority the columnar fast path and shared-text ASP
    /// encoding resolve against.
    symbols: Arc<relalg::SymbolTable>,
    cache_capacity: Option<usize>,
    /// The construction-time static-analysis report over the system.
    analysis: crate::analyze::Report,
    cache: RwLock<EngineCache>,
    metrics: MetricCounters,
    /// Monotone tick source for LRU recency (bumped on every cache touch).
    clock: AtomicU64,
    /// Serializes engine-level commits (store publish + cache bookkeeping +
    /// stale-artifact repair). Readers never take it.
    commit_lock: Mutex<()>,
    /// `(transitive, peer, slice)` keys currently being repaired by a
    /// committing thread. A reader that finds a stale entry waits on
    /// [`QueryEngine::patch_done`] for the repair instead of re-preparing,
    /// then counts a single cache *hit* (the hit-after-patch rule). Readers
    /// only lock this after releasing the cache lock; the committer
    /// registers keys inside the cache write section, so a reader that
    /// observes a stale entry is guaranteed to find its key here.
    patching: Mutex<BTreeSet<(bool, PeerId, String)>>,
    /// Signalled after each repaired (or dropped) stale artifact.
    patch_done: Condvar,
}

impl QueryEngine {
    /// Worlds per prepared entry below which the certain-answer
    /// intersection stays sequential (fan-out overhead dominates).
    const MIN_PARALLEL_WORLDS: usize = 8;

    /// Start building an engine over `system`, served through the canonical
    /// [`InProcessStore`]. To answer over a different [`PeerStore`] (e.g. a
    /// sharded runtime), follow with [`QueryEngineBuilder::store`].
    pub fn builder(system: P2PSystem) -> QueryEngineBuilder {
        QueryEngineBuilder {
            store: Arc::new(InProcessStore::new(system)),
            strategy: Strategy::default(),
            custom: None,
            solver_config: SolverConfig::default(),
            solution_options: SolutionOptions::default(),
            exec: ExecConfig::sequential(),
            relevance_pruning: true,
            incremental_reground: true,
            interned_data_plane: true,
            cache_capacity: None,
            strict_analysis: false,
            recorder: None,
        }
    }

    /// An engine with all defaults ([`Strategy::Auto`]).
    pub fn new(system: P2PSystem) -> Self {
        QueryEngine::builder(system).build()
    }

    /// The store the engine answers over.
    pub fn store(&self) -> &Arc<dyn PeerStore> {
        &self.store
    }

    /// The engine's local topology replica: the system with every instance
    /// *empty*. Schemas, DECs, trust and the relevant-peer closure are all
    /// here; instance data is only reachable through
    /// [`QueryEngine::store`] / [`QueryEngine::snapshot_system`].
    pub fn topology(&self) -> &P2PSystem {
        &self.topology
    }

    /// Materialize the full system (topology + every peer's current
    /// instance) from the store. A transport round-trip per shard on a
    /// sharded store — use for oracles and snapshots, not hot paths.
    pub fn snapshot_system(&self) -> Result<P2PSystem> {
        self.pin()?.system()
    }

    /// Pin the store's current epoch: an immutable [`Snapshot`] whose reads
    /// are stable under concurrent commits. Every cold preparation the
    /// engine runs fetches its instances through a pin, so multi-peer reads
    /// are consistent (never torn across an in-flight commit); warm queries
    /// serve version-stamped artifacts and need no pin at all. Emits an
    /// `epoch.pin` span and bumps the `mvcc.pins` counter.
    pub fn pin(&self) -> Result<Snapshot> {
        let span = Span::enter(self.recorder.as_ref(), "epoch.pin");
        let snapshot = self.store.pin();
        span.finish();
        if snapshot.is_ok() {
            self.recorder.count("mvcc.pins", 1);
        }
        snapshot
    }

    /// The store's MVCC counters (pins, epoch publications, copied pages) —
    /// see [`crate::store::MvccStats`].
    pub fn mvcc_stats(&self) -> MvccStats {
        self.store.mvcc_stats()
    }

    /// The topology replica hydrated with the instances of `peers`, fetched
    /// from one pinned epoch (every other peer's instance stays empty). The
    /// pin makes the multi-peer read consistent: a commit landing mid-fetch
    /// cannot tear it.
    fn hydrated(&self, peers: &BTreeSet<PeerId>) -> Result<P2PSystem> {
        let snapshot = self.pin()?;
        let mut system = self.topology.clone();
        for (peer, instance) in snapshot.instances(peers)? {
            system.set_instance(&peer, instance)?;
        }
        Ok(system)
    }

    /// The configured default strategy.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The solver configuration used by the ASP strategies.
    pub fn solver_config(&self) -> SolverConfig {
        self.solver_config
    }

    /// The repair-search options used by the naive strategy.
    pub fn solution_options(&self) -> SolutionOptions {
        self.solution_options
    }

    /// The parallel execution configuration.
    pub fn exec_config(&self) -> ExecConfig {
        self.exec.config()
    }

    /// Is relevance-driven grounding enabled for the ASP strategies?
    pub fn relevance_pruning(&self) -> bool {
        self.relevance_pruning
    }

    /// Is delta-driven incremental re-grounding enabled?
    pub fn incremental_reground(&self) -> bool {
        self.incremental_reground
    }

    /// The memo cache's byte budget (`None` = unbounded).
    pub fn cache_capacity(&self) -> Option<usize> {
        self.cache_capacity
    }

    /// The static-analysis report computed when the engine was built
    /// (always present; with strict analysis it is guaranteed error-free).
    pub fn analysis_report(&self) -> &crate::analyze::Report {
        &self.analysis
    }

    /// The next LRU recency tick.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The executor for *within-query* fan-out: the engine's pool, unless
    /// this thread is already a batch-partition worker (see
    /// [`IN_BATCH_WORKER`]).
    fn query_exec(&self) -> Executor {
        if IN_BATCH_WORKER.with(|flag| flag.get()) {
            Executor::sequential()
        } else {
            self.exec.clone()
        }
    }

    /// The observability recorder every query reports to
    /// ([`NullRecorder`] unless one was installed via
    /// [`QueryEngineBuilder::recorder`]).
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.recorder
    }

    /// Resolve which mechanism a query would run under the given strategy
    /// (the [`Strategy::Auto`] decision, made static and inspectable).
    pub fn resolve(&self, strategy: Strategy, peer: &PeerId, query: &Formula) -> StrategyKind {
        self.resolve_explained(strategy, peer, query).0
    }

    /// [`QueryEngine::resolve`], plus — when [`Strategy::Auto`] fell back to
    /// ASP — the diagnostic code of the disqualifying reason (the codes of
    /// [`crate::analyze`]'s rewritability pass, surfaced per answer on
    /// [`EngineStats::auto_reason`]). The decision delegates to
    /// [`crate::analyze::classify_rewritability`], the single source of
    /// truth the static analyzer reports from.
    pub fn resolve_explained(
        &self,
        strategy: Strategy,
        peer: &PeerId,
        query: &Formula,
    ) -> (StrategyKind, Option<&'static str>) {
        match strategy {
            Strategy::Naive => (StrategyKind::Naive, None),
            Strategy::Rewriting => (StrategyKind::Rewriting, None),
            Strategy::Asp => (StrategyKind::Asp, None),
            Strategy::TransitiveAsp => (StrategyKind::TransitiveAsp, None),
            Strategy::Auto => {
                if self.check_language(peer, query).is_err() {
                    // Outside the peer's schema: no verdict applies; the
                    // strategy's own answer will surface the error.
                    return (StrategyKind::Asp, None);
                }
                match crate::analyze::classify_rewritability(&self.topology, peer) {
                    Ok(crate::analyze::RewriteVerdict::Rewritable) => {
                        if rewriting::supports_query(query) {
                            (StrategyKind::Rewriting, None)
                        } else {
                            (
                                StrategyKind::Asp,
                                Some(crate::analyze::codes::REWRITE_QUERY_FRAGMENT),
                            )
                        }
                    }
                    Ok(crate::analyze::RewriteVerdict::NotRewritable { code, .. }) => {
                        (StrategyKind::Asp, Some(code))
                    }
                    Err(_) => (StrategyKind::Asp, None),
                }
            }
        }
    }

    /// Answer `query` (with answer variables `free_vars`) posed to `peer`
    /// using the engine's configured strategy.
    pub fn answer(&self, peer: &PeerId, query: &Formula, free_vars: &[String]) -> Result<Answers> {
        if let Some(custom) = &self.custom {
            if !custom.supports(self, peer, query) {
                return Err(CoreError::Unsupported(format!(
                    "strategy `{}` does not support this query",
                    custom.name()
                )));
            }
            let span = Span::enter(self.recorder.as_ref(), "query");
            let result = custom.answer(self, peer, query, free_vars);
            span.finish();
            return result;
        }
        self.answer_with(self.strategy, peer, query, free_vars)
    }

    /// Answer with an explicit strategy, sharing this engine's cache. This is
    /// how cross-mechanism comparisons (tests, benchmarks, the examples) run
    /// every mechanism against one system without re-preparing it.
    pub fn answer_with(
        &self,
        strategy: Strategy,
        peer: &PeerId,
        query: &Formula,
        free_vars: &[String],
    ) -> Result<Answers> {
        let (kind, auto_reason) = self.resolve_explained(strategy, peer, query);
        let built_in: &dyn AnsweringStrategy = match kind {
            StrategyKind::Naive => &NaiveStrategy,
            StrategyKind::Rewriting => &RewritingStrategy,
            StrategyKind::Asp => &AspStrategy,
            StrategyKind::TransitiveAsp => &TransitiveAspStrategy,
            StrategyKind::Custom => unreachable!("resolve never yields Custom"),
        };
        let span = Span::enter_with(
            self.recorder.as_ref(),
            "query",
            &[
                pdes_obs::Field::text("peer", peer.to_string()),
                pdes_obs::Field::text("strategy", kind.label()),
            ],
        );
        let result = built_in.answer(self, peer, query, free_vars);
        span.finish();
        let mut answers = result?;
        answers.stats.auto_reason = auto_reason;
        Ok(answers)
    }

    /// Convenience wrapper: answer variables by name.
    pub fn answer_named(
        &self,
        peer: &PeerId,
        query: &Formula,
        free_vars: &[&str],
    ) -> Result<Answers> {
        self.answer(peer, query, &vars(free_vars))
    }

    // ------------------------------------------------------------------
    // Batched answering.
    // ------------------------------------------------------------------

    /// Answer a batch of queries, evaluating closure-disjoint partitions
    /// concurrently on the engine's [`ExecConfig`] pool.
    ///
    /// The batch is partitioned by relevant-peer closure
    /// ([`P2PSystem::dependencies_of`]): two queries land in the same
    /// partition exactly when their closures intersect, i.e. when they could
    /// share (or race on) a preparation. Within a partition, queries run
    /// sequentially in submission order — so they warm each other's cache
    /// like a plain loop would — while distinct partitions touch disjoint
    /// peers and run on separate workers. Results come back in submission
    /// order, one per query, and the certain answers are identical to a
    /// sequential loop of [`QueryEngine::answer`] calls for every pool size
    /// (per-run timing and `cache_hit` stats may differ, e.g. two partitions
    /// can both miss the shared global instance where a loop would hit).
    ///
    /// With a sequential [`ExecConfig`] (the default) this *is* the plain
    /// loop.
    pub fn answer_batch(&self, queries: &[Query]) -> Vec<Result<Answers>> {
        let recorder = self.recorder.as_ref();
        recorder.count("batch.queries", queries.len() as u64);
        let batch_span = Span::enter_with(
            recorder,
            "batch",
            &[pdes_obs::Field::u64("queries", queries.len() as u64)],
        );
        let out = self.answer_batch_inner(queries);
        batch_span.finish();
        out
    }

    fn answer_batch_inner(&self, queries: &[Query]) -> Vec<Result<Answers>> {
        let one = |q: &Query| self.answer(&q.peer, &q.query, &q.free_vars);
        if self.exec.config().is_sequential() || queries.len() <= 1 {
            return queries.iter().map(one).collect();
        }
        let partition_span = Span::enter(self.recorder.as_ref(), "batch.partition");
        let partitions = self.partition_batch(queries);
        partition_span.finish();
        if partitions.len() <= 1 {
            return queries.iter().map(one).collect();
        }
        let per_partition = self.exec.map(&partitions, |indices| {
            IN_BATCH_WORKER.with(|flag| flag.set(true));
            indices
                .iter()
                .map(|&i| (i, one(&queries[i])))
                .collect::<Vec<_>>()
        });
        let mut out: Vec<Option<Result<Answers>>> = queries.iter().map(|_| None).collect();
        for partition in per_partition {
            for (i, result) in partition {
                out[i] = Some(result);
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every query index is assigned to exactly one partition"))
            .collect()
    }

    /// Group query indices into partitions that could share (or duplicate)
    /// a preparation: union-find over *resource tokens*. Two ASP queries
    /// share a token only when they touch the same closure peer with the
    /// same grounded slice (`(peer, slice key)` — so two disjoint-slice
    /// queries on one peer run concurrently), while naive/rewriting queries
    /// — whose preparations are per-peer or global — token on the closure
    /// peers alone, as before. Partitions are ordered by their first query
    /// index and each partition's indices are ascending, so evaluation order
    /// within a partition matches submission order.
    fn partition_batch(&self, queries: &[Query]) -> Vec<Vec<usize>> {
        fn find(parent: &mut [usize], i: usize) -> usize {
            let mut root = i;
            while parent[root] != root {
                root = parent[root];
            }
            let mut walk = i;
            while parent[walk] != root {
                let next = parent[walk];
                parent[walk] = root;
                walk = next;
            }
            root
        }
        let mut parent: Vec<usize> = (0..queries.len()).collect();
        let mut owner_of_token: BTreeMap<String, usize> = BTreeMap::new();
        // The closure is a DEC-graph traversal; compute it once per
        // distinct queried peer, not once per query.
        let mut closures: BTreeMap<&PeerId, BTreeSet<PeerId>> = BTreeMap::new();
        for (i, query) in queries.iter().enumerate() {
            // The per-mechanism slice suffix: ASP artifacts are keyed by
            // `(peer, slice)`, so only same-slice queries contend. A custom
            // strategy is opaque — fall back to peer-level tokens.
            let suffix = if self.custom.is_some() {
                String::new()
            } else {
                match self.resolve(self.strategy, &query.peer, &query.query) {
                    StrategyKind::Asp => format!("a\u{1}{}", self.slice_key(&query.query)),
                    StrategyKind::TransitiveAsp => {
                        format!("t\u{1}{}", self.slice_key(&query.query))
                    }
                    _ => String::new(),
                }
            };
            let closure = closures
                .entry(&query.peer)
                .or_insert_with(|| self.topology.dependencies_of(&query.peer));
            for peer in closure.iter() {
                let token = format!("{peer}\u{1}{suffix}");
                match owner_of_token.entry(token) {
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(i);
                    }
                    std::collections::btree_map::Entry::Occupied(slot) => {
                        let a = find(&mut parent, i);
                        let b = find(&mut parent, *slot.get());
                        // Union towards the smaller root, keeping the
                        // partition labelled by its earliest query.
                        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                        parent[hi] = lo;
                    }
                }
            }
        }
        let mut partitions: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..queries.len() {
            let root = find(&mut parent, i);
            partitions.entry(root).or_default().push(i);
        }
        partitions.into_values().collect()
    }

    // ------------------------------------------------------------------
    // Live updates: versions, commits, invalidation.
    // ------------------------------------------------------------------

    /// Apply an update delta to `peer`'s instance, bump the peer's version
    /// and invalidate exactly the memoized artifacts whose relevant-peer
    /// closure contains `peer`. The cached global instance is maintained
    /// *incrementally* (the delta is applied to it in place of a full
    /// recomputation), so warm rewriting queries stay warm across commits.
    /// Returns the peer's new version.
    ///
    /// With incremental re-grounding enabled (the default), an affected ASP
    /// artifact is not dropped: if the delta's relations lie outside its
    /// grounded slice it stays *valid* (its stamp is refreshed in place —
    /// the grounding provably cannot observe the change), and otherwise it
    /// becomes *stale*, keeping its saturation state and queueing the delta;
    /// the next query over the slice repairs the grounding by re-deriving
    /// only the affected rules ([`datalog::incremental`]). Naive-strategy
    /// artifacts are always dropped (solution enumeration has no patchable
    /// intermediate state).
    ///
    /// Validation of the delta against the peer's schema happens before any
    /// state changes ([`P2PSystem::apply_delta`]); local integrity
    /// constraints are the responsibility of the transactional layer
    /// (`pdes-session`), which checks them before calling this.
    pub fn commit_delta(&self, peer: &PeerId, delta: &relalg::Delta) -> Result<u64> {
        let recorder = Arc::clone(&self.recorder);
        let span = Span::enter_with(
            recorder.as_ref(),
            "commit",
            &[pdes_obs::Field::text("peer", peer.to_string())],
        );
        let out = self.commit_delta_inner(peer, delta);
        span.finish();
        out
    }

    fn commit_delta_inner(&self, peer: &PeerId, delta: &relalg::Delta) -> Result<u64> {
        // Commits serialize on the engine's commit lock; readers never take
        // it, and the cache write lock below is held only for map updates —
        // never across the store publish or the artifact repair.
        let _commit = self
            .commit_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // The store is the version authority: it validates, applies and
        // stamps; the engine mirrors the returned stamp into its cache
        // versions so memo artifacts key off store truth.
        let cow_before = self.store.mvcc_stats().cow_pages;
        let publish_span = Span::enter(self.recorder.as_ref(), "epoch.publish");
        let version = self.store.apply_delta(peer, delta)?;
        publish_span.finish();
        self.recorder.count("mvcc.publishes", 1);
        let cow = self.store.mvcc_stats().cow_pages.saturating_sub(cow_before);
        if cow > 0 {
            self.recorder.count("mvcc.cow_pages", cow);
        }
        // Bookkeeping under the write lock; collect the slices this commit
        // staled so *this* thread can repair them below.
        let mut to_patch: Vec<(bool, (PeerId, String))> = Vec::new();
        {
            let mut cache = self.write_cache();
            cache.versions.insert(peer.clone(), version);
            // Incremental maintenance of the materialized global instance:
            // relation names are globally unique (Definition 2(b)), so a
            // peer-local delta applies verbatim to the union of all
            // instances.
            if let Some((global, nanos)) = cache.global.take() {
                cache.global = Some((Arc::new(delta.apply(&global)?), nanos));
            }
            // Naive artifacts: no patchable state — drop the affected ones.
            let mut invalidated = 0u64;
            cache.naive.retain(|_, entry| {
                let keep = !entry.stamp.contains_key(peer);
                if !keep {
                    invalidated += 1;
                }
                keep
            });
            // ASP artifacts: refresh, stale or drop.
            let incremental = self.incremental_reground;
            for transitive in [false, true] {
                cache.asp_slot(transitive).retain(|key, entry| {
                    if !entry.stamp.contains_key(peer) {
                        return true; // outside the closure: untouched
                    }
                    let Some(state) = entry.state.as_ref().filter(|_| incremental) else {
                        invalidated += 1;
                        return false; // not patchable: drop, as before
                    };
                    entry.stamp.insert(peer.clone(), version);
                    if delta.relations().iter().any(|r| state.touches(r)) {
                        // The slice can observe the delta: queue it (net
                        // composition — insert-then-delete cancels).
                        if entry.is_valid() {
                            invalidated += 1;
                        }
                        let queued = entry.pending.entry(peer.clone()).or_default();
                        *queued = queued.compose(delta);
                        if queued.is_empty() {
                            entry.pending.remove(peer);
                        } else {
                            to_patch.push((transitive, key.clone()));
                        }
                    } // else: the slice provably cannot observe the delta —
                      // the refreshed stamp keeps the entry warm.
                    true
                });
            }
            self.metrics
                .invalidated
                .fetch_add(invalidated, Ordering::Relaxed);
            // Register the repair set while still inside the cache write
            // section: a reader that observes a stale entry afterwards is
            // guaranteed to find its key registered and wait for the patch.
            if !to_patch.is_empty() {
                let mut patching = self
                    .patching
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                for (transitive, key) in &to_patch {
                    patching.insert((*transitive, key.0.clone(), key.1.clone()));
                }
            }
        }
        // Repair off the reader hot path: the committing thread patches,
        // re-solves and swaps each staled artifact (outside every lock), so
        // the next reader *hits* instead of paying the patch itself.
        for (transitive, key) in to_patch {
            self.repair_stale(transitive, &key);
            let mut patching = self
                .patching
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            patching.remove(&(transitive, key.0.clone(), key.1.clone()));
            drop(patching);
            self.patch_done.notify_all();
        }
        self.metrics.commits.fetch_add(1, Ordering::Relaxed);
        Ok(version)
    }

    /// Repair one staled ASP artifact on the committing thread: patch its
    /// retained saturation state with the queued deltas, re-solve, re-decode
    /// and swap the result into the entry. Grounding, solving and decoding
    /// all run without the cache lock; the entry stays visible (and stale)
    /// throughout, so racing readers wait on [`QueryEngine::patch_done`]
    /// rather than re-preparing. On any failure the entry is dropped and the
    /// next query re-grounds from scratch.
    fn repair_stale(&self, transitive: bool, key: &(PeerId, String)) {
        let drop_entry = || {
            let mut cache = self.write_cache();
            if cache.asp_slot(transitive).remove(key).is_some() {
                self.metrics.invalidated.fetch_add(1, Ordering::Relaxed);
            }
        };
        // Take the saturation state out (leaving `pending` in place, so the
        // entry still reads as stale to concurrent lookups).
        let (spec, mut state, pending) = {
            let mut cache = self.write_cache();
            let Some(entry) = cache.asp_slot(transitive).get_mut(key) else {
                return;
            };
            if entry.is_valid() {
                return;
            }
            let (Some(spec), Some(state)) = (entry.spec.clone(), entry.state.take()) else {
                drop(cache);
                drop_entry();
                return;
            };
            (spec, state, entry.pending.clone())
        };
        let recorder = self.recorder.as_ref();
        let prepare_span = Span::enter(recorder, "prepare");
        let patch_span = Span::enter(recorder, "patch");
        recorder.count("cache.stale_patch", 1);
        let mut insertions = Vec::new();
        let mut deletions = Vec::new();
        for delta in pending.values() {
            let (ins, del) =
                program_delta_atoms(delta, self.interned_data_plane.then(|| &*self.symbols));
            insertions.extend(ins);
            deletions.extend(del);
        }
        let patch = state.apply_delta(&insertions, &deletions);
        let ground = state.to_ground();
        let ground_nanos = duration_nanos(patch_span.finish());
        let Ok(solved) = solve_prepared(ground, self.solver_config, &self.query_exec(), recorder)
        else {
            drop_entry();
            return;
        };
        // Decoding only consults the topology (relation ownership), never
        // instance data — the worlds themselves come from the patched
        // program.
        let Ok(databases) = spec.solution_databases(&self.topology, &solved.sets) else {
            drop_entry();
            return;
        };
        let provenance = spec.provenance(&solved.sets);
        let columnar = self.columnar_worlds(&databases);
        let prepared = Arc::new(PreparedWorlds {
            worlds: solved.sets.len(),
            databases,
            prepare_nanos: duration_nanos(prepare_span.finish()),
            ground_nanos,
            solve_nanos: solved.solve_nanos,
            grounded_rules: solved.grounded_rules,
            grounded_atoms: solved.grounded_atoms,
            regrounded_rules: patch.reinstantiated_rules,
            provenance,
            columnar,
        });
        self.metrics.patched.fetch_add(1, Ordering::Relaxed);
        let state_bytes = self.state_bytes(&state);
        let mut cache = self.write_cache();
        if let Some(entry) = cache.asp_slot(transitive).get_mut(key) {
            entry.bytes = prepared.bytes() + state_bytes;
            entry.prepared = prepared;
            entry.state = Some(state);
            entry.pending.clear();
        }
        self.enforce_capacity(&mut cache);
    }

    /// Drop every memoized artifact whose relevant-peer closure intersects
    /// `touched`, plus the materialized global instance (no delta is
    /// available here to maintain it incrementally). Returns the number of
    /// artifacts dropped. Use this when the system was mutated through a
    /// side channel; [`QueryEngine::commit_delta`] invalidates on its own.
    pub fn invalidate_peers<I: IntoIterator<Item = PeerId>>(&self, touched: I) -> u64 {
        let touched: BTreeSet<PeerId> = touched.into_iter().collect();
        if touched.is_empty() {
            return 0;
        }
        let mut cache = self.write_cache();
        let mut dropped = cache.drop_stamped(&touched);
        if cache.global.take().is_some() {
            dropped += 1;
        }
        self.metrics
            .invalidated
            .fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// Drop the entire cache (the "full flush" baseline of the live-update
    /// benchmarks). Returns the number of artifacts dropped.
    pub fn flush_cache(&self) -> u64 {
        let mut cache = self.write_cache();
        let mut dropped = (cache.naive.len() + cache.asp.len() + cache.transitive.len()) as u64;
        cache.naive.clear();
        cache.asp.clear();
        cache.transitive.clear();
        if cache.global.take().is_some() {
            dropped += 1;
        }
        self.metrics
            .invalidated
            .fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// The current version of a peer (0 until its first committed update).
    pub fn version_of(&self, peer: &PeerId) -> u64 {
        self.read_cache().versions.get(peer).copied().unwrap_or(0)
    }

    /// The current per-peer versions of every peer in the system.
    pub fn versions(&self) -> BTreeMap<PeerId, u64> {
        let cache = self.read_cache();
        self.topology
            .peer_ids()
            .map(|p| (p.clone(), cache.versions.get(p).copied().unwrap_or(0)))
            .collect()
    }

    /// The relevant-peer closure of a peer — the peers whose commits
    /// invalidate this peer's memoized artifacts.
    pub fn relevant_peers(&self, peer: &PeerId) -> BTreeSet<PeerId> {
        self.topology.dependencies_of(peer)
    }

    /// Lifetime cache counters (hits, misses, invalidations, commits).
    pub fn metrics(&self) -> CacheMetrics {
        self.metrics.snapshot()
    }

    /// How many per-peer artifacts (naive / ASP / transitive entries) are
    /// currently memoized, excluding the global instance. Includes stale
    /// entries awaiting an incremental repair (see
    /// [`QueryEngine::stale_artifact_count`]).
    pub fn cached_artifact_count(&self) -> usize {
        let cache = self.read_cache();
        cache.naive.len() + cache.asp.len() + cache.transitive.len()
    }

    /// How many memoized ASP artifacts are *stale* — invalidated by a
    /// commit but kept with their saturation state for the next query to
    /// repair incrementally.
    pub fn stale_artifact_count(&self) -> usize {
        let cache = self.read_cache();
        cache.asp.values().filter(|e| !e.is_valid()).count()
            + cache.transitive.values().filter(|e| !e.is_valid()).count()
    }

    /// The estimated total size of the memoized artifacts in bytes (the
    /// quantity bounded by [`QueryEngineBuilder::cache_capacity`]).
    pub fn cached_bytes(&self) -> usize {
        self.read_cache().total_bytes()
    }

    // ------------------------------------------------------------------
    // Shared preparation (the memoized hot path).
    // ------------------------------------------------------------------

    /// Shared (read) access to the cache, recovering from poisoning: the
    /// cache only holds immutable prepared state behind `Arc`s, so observing
    /// it after a panicked preparation is safe (the failed entry was never
    /// inserted).
    fn read_cache(&self) -> RwLockReadGuard<'_, EngineCache> {
        self.cache
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Exclusive (write) access to the cache; see [`QueryEngine::read_cache`]
    /// for the poisoning rationale.
    fn write_cache(&self) -> RwLockWriteGuard<'_, EngineCache> {
        self.cache
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The materialized global instance, computed once per engine. Returns
    /// `(instance, cache_hit, nanos_this_run, nanos_originally)` — on a hit
    /// the run cost is 0 and the original materialization cost is reported
    /// instead ([`EngineStats::cached_prepare_time`]).
    fn global_instance(&self) -> Result<(Arc<Database>, bool, u64, u64)> {
        if let Some((db, nanos)) = &self.read_cache().global {
            let db = Arc::clone(db);
            let nanos = *nanos;
            self.metrics.hits.fetch_add(1, Ordering::Relaxed);
            self.recorder.count("cache.hit", 1);
            return Ok((db, true, 0, nanos));
        }
        self.metrics.misses.fetch_add(1, Ordering::Relaxed);
        self.recorder.count("cache.miss", 1);
        // Materialize outside the lock, from one pinned epoch; concurrent
        // misses may duplicate the work but never block each other on it.
        let span = Span::enter(self.recorder.as_ref(), "prepare");
        let db = Arc::new(self.pin()?.system()?.global_instance()?);
        let nanos = duration_nanos(span.finish());
        let mut cache = self.write_cache();
        let (entry, nanos) = cache.global.get_or_insert_with(|| (Arc::clone(&db), nanos));
        Ok((Arc::clone(entry), false, *nanos, 0))
    }

    /// Enumerated solutions of `peer`, restricted to the peer's relations.
    ///
    /// The entry's stamp covers *every* peer: the repair search operates on
    /// the global instance and draws existential witnesses from its active
    /// domain, so in principle any peer's data can influence it.
    fn naive_worlds(&self, peer: &PeerId) -> Result<(Arc<PreparedWorlds>, bool)> {
        // Fast path: a warm entry costs only the read lock.
        {
            let cache = self.read_cache();
            if let Some(entry) = cache.naive.get(peer) {
                if cache.stamp_current(&entry.stamp) {
                    entry.last_used.store(self.tick(), Ordering::Relaxed);
                    let prepared = Arc::clone(&entry.prepared);
                    self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                    self.recorder.count("cache.hit", 1);
                    return Ok((prepared, true));
                }
            }
        }
        // Slow path: re-check under the write lock (another worker may have
        // prepared the peer between the two lock acquisitions), evict a
        // stale entry, and record the stamp the preparation will carry.
        let stamp = {
            let mut cache = self.write_cache();
            if let Some(entry) = cache.naive.get(peer) {
                if cache.stamp_current(&entry.stamp) {
                    entry.last_used.store(self.tick(), Ordering::Relaxed);
                    let prepared = Arc::clone(&entry.prepared);
                    self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                    self.recorder.count("cache.hit", 1);
                    return Ok((prepared, true));
                }
                cache.naive.remove(peer);
                self.metrics.invalidated.fetch_add(1, Ordering::Relaxed);
            }
            self.metrics.misses.fetch_add(1, Ordering::Relaxed);
            self.recorder.count("cache.miss", 1);
            cache.stamp_for(self.topology.peer_ids().cloned())
        };
        // Enumerate outside the lock (solution search can be expensive).
        // The repair search needs every instance (it operates on the global
        // instance), so a cold naive preparation is the one full-epoch
        // materialization in the engine — pinned, so a concurrent commit
        // cannot tear it.
        let span = Span::enter(self.recorder.as_ref(), "prepare");
        let snapshot = self.pin()?.system()?;
        let (solutions, search) = crate::solution::solutions_with_stats_recorded(
            &snapshot,
            peer,
            self.solution_options,
            self.recorder.as_ref(),
        )?;
        let mut databases = Vec::with_capacity(solutions.len());
        for solution in &solutions {
            databases.push(self.topology.restrict_to_peer(&solution.database, peer)?);
        }
        let columnar = self.columnar_worlds(&databases);
        let prepared = Arc::new(PreparedWorlds {
            worlds: solutions.len(),
            databases,
            prepare_nanos: duration_nanos(span.finish()),
            ground_nanos: 0,
            solve_nanos: 0,
            grounded_rules: 0,
            grounded_atoms: 0,
            regrounded_rules: 0,
            provenance: Provenance::Naive {
                solution_count: solutions.len(),
                search,
            },
            columnar,
        });
        let mut cache = self.write_cache();
        let entry = cache
            .naive
            .entry(peer.clone())
            .or_insert_with(|| NaiveEntry {
                stamp,
                bytes: prepared.bytes(),
                last_used: AtomicU64::new(0),
                prepared,
            });
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        let prepared = Arc::clone(&entry.prepared);
        self.enforce_capacity(&mut cache);
        Ok((prepared, false))
    }

    /// The cheap *query-shape* key: an injective rendering of the query's
    /// relations with their generalized constant bindings (every segment is
    /// length-prefixed, so constants containing delimiter characters cannot
    /// collide), or `"<full>"` when relevance pruning is disabled. Two
    /// queries with the same shape key always ground the same slice; shapes
    /// whose differences the relevance analysis cannot exploit (bindings on
    /// unrestrictable seeds) are deduplicated onto one artifact through the
    /// alias map ([`EngineCache::alias_slot`]).
    fn slice_key(&self, query: &Formula) -> String {
        if !self.relevance_pruning {
            return "<full>".to_string();
        }
        use std::fmt::Write as _;
        let mut out = String::new();
        let symbols = self.interned_data_plane.then(|| &*self.symbols);
        for (relation, bindings) in query_binding_patterns(query, symbols) {
            let _ = write!(out, "r{}:{};", relation.len(), relation);
            for binding in &bindings {
                match binding {
                    Some(c) => {
                        let _ = write!(out, "b{}:{};", c.len(), c);
                    }
                    None => out.push_str("u;"),
                }
            }
            out.push('#');
        }
        out
    }

    /// The query seeds handed to [`datalog::ground_relevant`]: the query's
    /// relations mapped to their solution predicates, carrying the
    /// generalized constant bindings. `None` when pruning is disabled.
    fn query_seeds(
        &self,
        query: &Formula,
        solution_predicate: &dyn Fn(&str) -> String,
    ) -> Option<Vec<datalog::QuerySeed>> {
        if !self.relevance_pruning {
            return None;
        }
        Some(
            query_binding_patterns(query, self.interned_data_plane.then(|| &*self.symbols))
                .into_iter()
                .map(|(relation, bindings)| {
                    datalog::QuerySeed::with_bindings(solution_predicate(&relation), bindings)
                })
                .collect(),
        )
    }

    /// Grounded + solved specification program of `peer` (direct or
    /// transitive) for one query slice, decoded into per-world databases.
    ///
    /// The entry's stamp covers the peer's relevant-peer closure
    /// ([`P2PSystem::dependencies_of`]): the specification programs only read
    /// the instances of DEC-reachable peers, so commits outside the closure
    /// leave the entry warm. With relevance pruning enabled, only the
    /// query-relevant slice of the specification is grounded and solved
    /// ([`datalog::relevance`]); the decoded worlds carry empty extensions
    /// for pruned relations, which is sound because the artifact is keyed by
    /// the slice fingerprint and only ever evaluates queries over seeded
    /// relations.
    ///
    /// Two-level keying: the cheap query-shape key
    /// ([`QueryEngine::slice_key`]) resolves through an alias map to the
    /// canonical slice fingerprint, so a repeated query hits under the read
    /// lock alone, while queries whose shapes differ only in ways the
    /// relevance analysis cannot exploit (e.g. constants on an
    /// unrestrictable seed) converge on one grounded artifact instead of
    /// re-grounding per constant.
    fn asp_worlds(
        &self,
        peer: &PeerId,
        transitive: bool,
        query: &Formula,
    ) -> Result<(Arc<PreparedWorlds>, bool)> {
        let shape_key = (peer.clone(), self.slice_key(query));
        // Fast path: resolve alias and artifact under the read lock. A
        // stale entry under repair by a committing thread is *waited for*
        // (never re-prepared): after the patch lands this loop retries and
        // serves it as one ordinary hit — the hit-after-patch rule, which
        // keeps the read-path metrics from conflating a committer's patch
        // with a reader's miss.
        let mut waited = false;
        loop {
            let patching;
            {
                let cache = self.read_cache();
                if let Some(fingerprint) = cache.alias_slot_ref(transitive).get(&shape_key) {
                    let canonical = (peer.clone(), fingerprint.clone());
                    if let Some(entry) = cache.asp_slot_ref(transitive).get(&canonical) {
                        if entry.is_valid() && cache.stamp_current(&entry.stamp) {
                            entry.last_used.store(self.tick(), Ordering::Relaxed);
                            let prepared = Arc::clone(&entry.prepared);
                            self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                            self.recorder.count("cache.hit", 1);
                            return Ok((prepared, true));
                        }
                        patching = (!waited && !entry.is_valid()).then_some(canonical);
                    } else {
                        patching = None;
                    }
                } else {
                    patching = None;
                }
            }
            match patching {
                Some(canonical) if self.wait_for_patch(transitive, &canonical) => {
                    waited = true; // retry the fast path once, expecting a hit
                }
                _ => break,
            }
        }
        // Build the specification program, the restricted slice and the
        // canonical fingerprint outside any lock (program construction is
        // cheap next to grounding and solving, which only run when the
        // canonical artifact is cold or stale). The program embeds peer
        // instances as facts; with relevance pruning on, only the peer's
        // relevant-peer closure can influence its answers, so the slow path
        // hydrates exactly that closure through the store — one batched
        // fetch, never the whole system. With pruning off the legacy full
        // grounding is reproduced verbatim (every peer's facts in the
        // program), which needs the full snapshot.
        let recorder = self.recorder.as_ref();
        let prepare_span = Span::enter(recorder, "prepare");
        let closure = self.topology.dependencies_of(peer);
        let hydrated = if self.relevance_pruning {
            self.hydrated(&closure)?
        } else {
            self.pin()?.system()?
        };
        // With the interned data plane on, fact constants alias the store's
        // interned text (one shared `Arc<str>` per distinct constant)
        // instead of re-rendering per tuple occurrence.
        let symbols = self.interned_data_plane.then(|| &*self.symbols);
        let spec = Arc::new(if transitive {
            SpecProgram::Transitive(crate::asp::transitive_program_with(
                &hydrated, peer, symbols,
            )?)
        } else {
            SpecProgram::Direct(crate::asp::annotated_program_with(
                &hydrated, peer, symbols,
            )?)
        });
        let seeds = self.query_seeds(query, &|relation| {
            spec.solution_predicate(&hydrated, relation)
        });
        let grounder = Grounder::new(spec.program());
        // The restricted program is only needed by the cold full-grounding
        // branches below; the stale-patch hot path repairs its retained
        // state instead, so the (slice-sized) clone is deferred.
        let relevance_span = Span::enter(recorder, "relevance");
        let analysis = seeds.as_ref().map(|seeds| grounder.relevance(seeds));
        relevance_span.finish();
        let fingerprint = analysis
            .as_ref()
            .map(|a| a.fingerprint())
            .unwrap_or_else(|| "<full>".to_string());
        let restrict = || match &analysis {
            Some(analysis) => analysis.restrict(grounder.program()),
            None => grounder.program().clone(),
        };
        let canonical = (peer.clone(), fingerprint.clone());
        // Slow path: record the alias, re-check the canonical artifact
        // under the write lock, pull out a stale entry's saturation state
        // for patching, and record the stamp the preparation will carry.
        let (stamp, stale) = {
            let mut cache = self.write_cache();
            cache.alias_slot(transitive).insert(shape_key, fingerprint);
            if let Some(entry) = cache.asp_slot_ref(transitive).get(&canonical) {
                if entry.is_valid() && cache.stamp_current(&entry.stamp) {
                    entry.last_used.store(self.tick(), Ordering::Relaxed);
                    let prepared = Arc::clone(&entry.prepared);
                    self.metrics.hits.fetch_add(1, Ordering::Relaxed);
                    self.recorder.count("cache.hit", 1);
                    return Ok((prepared, true));
                }
            }
            let mut stale = None;
            if let Some(entry) = cache.asp_slot(transitive).remove(&canonical) {
                let patchable = self.incremental_reground
                    && !entry.pending.is_empty()
                    && cache.stamp_current(&entry.stamp);
                match entry.state.filter(|_| patchable) {
                    // Stale-but-patchable: its staling was already counted
                    // as an invalidation at commit time.
                    Some(state) => stale = Some((state, entry.pending)),
                    None => {
                        self.metrics.invalidated.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            self.metrics.misses.fetch_add(1, Ordering::Relaxed);
            self.recorder.count("cache.miss", 1);
            (cache.stamp_for(closure.iter().cloned()), stale)
        };
        // Ground (or patch) and solve outside the lock: these are the
        // expensive phases and must not serialize unrelated queries.
        let ground_span = Span::enter(recorder, if stale.is_some() { "patch" } else { "ground" });
        if stale.is_some() {
            recorder.count("cache.stale_patch", 1);
        }
        let (ground, state, regrounded_rules) = match stale {
            Some((mut state, pending)) => {
                // Repair the stale grounding: translate the queued update
                // deltas into program-level fact changes and re-derive only
                // the affected rules.
                let mut insertions = Vec::new();
                let mut deletions = Vec::new();
                for delta in pending.values() {
                    let (ins, del) = program_delta_atoms(
                        delta,
                        self.interned_data_plane.then(|| &*self.symbols),
                    );
                    insertions.extend(ins);
                    deletions.extend(del);
                }
                let patch = state.apply_delta(&insertions, &deletions);
                let ground = state.to_ground();
                self.metrics.patched.fetch_add(1, Ordering::Relaxed);
                (ground, Some(state), patch.reinstantiated_rules)
            }
            None if self.incremental_reground => {
                let state =
                    datalog::IncrementalGround::new(&restrict()).map_err(CoreError::from)?;
                let ground = state.to_ground();
                let all = ground.rule_count();
                (ground, Some(state), all)
            }
            None => {
                let ground = Grounder::new(&restrict())
                    .ground()
                    .map_err(CoreError::from)?;
                let all = ground.rule_count();
                (ground, None, all)
            }
        };
        let ground_nanos = duration_nanos(ground_span.finish());
        let solved = solve_prepared(ground, self.solver_config, &self.query_exec(), recorder)?;
        let decode_span = Span::enter(recorder, "decode");
        let databases = spec.solution_databases(&hydrated, &solved.sets)?;
        decode_span.finish();
        let provenance = spec.provenance(&solved.sets);
        let columnar = self.columnar_worlds(&databases);
        let prepared = Arc::new(PreparedWorlds {
            worlds: solved.sets.len(),
            databases,
            prepare_nanos: duration_nanos(prepare_span.finish()),
            ground_nanos,
            solve_nanos: solved.solve_nanos,
            grounded_rules: solved.grounded_rules,
            grounded_atoms: solved.grounded_atoms,
            regrounded_rules,
            provenance,
            columnar,
        });
        let state_bytes = state.as_ref().map(|s| self.state_bytes(s)).unwrap_or(0);
        let mut cache = self.write_cache();
        let entry = cache
            .asp_slot(transitive)
            .entry(canonical)
            .or_insert_with(|| AspEntry {
                stamp,
                bytes: prepared.bytes() + state_bytes,
                state,
                pending: BTreeMap::new(),
                spec: self.incremental_reground.then(|| Arc::clone(&spec)),
                last_used: AtomicU64::new(0),
                prepared,
            });
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        let prepared = Arc::clone(&entry.prepared);
        self.enforce_capacity(&mut cache);
        Ok((prepared, false))
    }

    /// Block until no committing thread is repairing `key`'s artifact.
    /// Returns whether the key was under repair at all (callers retry the
    /// fast path only when it was). Never called with a cache lock held.
    fn wait_for_patch(&self, transitive: bool, key: &(PeerId, String)) -> bool {
        let token = (transitive, key.0.clone(), key.1.clone());
        let mut patching = self
            .patching
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if !patching.contains(&token) {
            return false;
        }
        while patching.contains(&token) {
            patching = self
                .patch_done
                .wait(patching)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        true
    }

    /// Evict least-recently-used artifacts until the cache fits its byte
    /// budget (no-op when unbounded). Called with the write lock held, right
    /// after an insert; the freshly inserted entry has the newest tick, so
    /// it is evicted only when it alone exceeds the whole budget.
    fn enforce_capacity(&self, cache: &mut EngineCache) {
        let Some(capacity) = self.cache_capacity else {
            return;
        };
        while cache.total_bytes() > capacity {
            enum Victim {
                Naive(PeerId),
                Asp(bool, (PeerId, String)),
            }
            let mut best: Option<(u64, Victim)> = None;
            let mut consider = |used: u64, victim: Victim| {
                if best.as_ref().map(|(u, _)| used < *u).unwrap_or(true) {
                    best = Some((used, victim));
                }
            };
            for (key, entry) in &cache.naive {
                consider(
                    entry.last_used.load(Ordering::Relaxed),
                    Victim::Naive(key.clone()),
                );
            }
            for transitive in [false, true] {
                for (key, entry) in cache.asp_slot_ref(transitive) {
                    consider(
                        entry.last_used.load(Ordering::Relaxed),
                        Victim::Asp(transitive, key.clone()),
                    );
                }
            }
            match best {
                Some((_, Victim::Naive(key))) => {
                    cache.naive.remove(&key);
                }
                Some((_, Victim::Asp(transitive, key))) => {
                    cache.asp_slot(transitive).remove(&key);
                }
                None => break,
            }
            self.metrics.evictions.fetch_add(1, Ordering::Relaxed);
            self.recorder.count("cache.evict", 1);
        }
    }

    /// Evaluate a query over prepared worlds and assemble the unified
    /// [`Answers`] (shared by the three world-based strategies).
    fn answers_from_worlds(
        &self,
        kind: StrategyKind,
        worlds: &PreparedWorlds,
        cache_hit: bool,
        query: &Formula,
        free_vars: &[String],
    ) -> Result<Answers> {
        let span = Span::enter(self.recorder.as_ref(), "eval");
        let tuples = self.certain_answers(worlds, query, free_vars)?;
        let eval_nanos = duration_nanos(span.finish());
        Ok(Answers {
            tuples,
            stats: EngineStats {
                strategy: kind,
                cache_hit,
                prepare_nanos: if cache_hit { 0 } else { worlds.prepare_nanos },
                ground_nanos: if cache_hit { 0 } else { worlds.ground_nanos },
                solve_nanos: if cache_hit { 0 } else { worlds.solve_nanos },
                eval_nanos,
                cached_prepare_nanos: if cache_hit { worlds.prepare_nanos } else { 0 },
                worlds: worlds.worlds,
                grounded_rules: worlds.grounded_rules,
                grounded_atoms: worlds.grounded_atoms,
                regrounded_rules: worlds.regrounded_rules,
                auto_reason: None,
            },
            provenance: worlds.provenance.clone(),
        })
    }

    /// Verify the query is expressed in the peer's own language `L(P)`.
    fn check_language(&self, peer: &PeerId, query: &Formula) -> Result<()> {
        let peer_data = self.topology.peer(peer)?;
        for relation in query.relations() {
            if !peer_data.schema.contains(&relation) {
                return Err(CoreError::UnknownRelation {
                    peer: peer.to_string(),
                    relation,
                });
            }
        }
        Ok(())
    }

    /// Intersect the query's answers over every prepared world, evaluating
    /// worlds on the engine's pool (set intersection commutes, so the fold
    /// over per-world results in world order is identical to the sequential
    /// loop for every pool size). Small world sets stay on the calling
    /// thread: below [`QueryEngine::MIN_PARALLEL_WORLDS`] the per-world
    /// evaluations are cheaper than spawning workers for them.
    fn certain_answers(
        &self,
        worlds: &PreparedWorlds,
        query: &Formula,
        free_vars: &[String],
    ) -> Result<BTreeSet<Tuple>> {
        // Interned fast path: conjunctive queries (with disjunction) run the
        // hash-join / semi-join kernels over the columnar id blocks and
        // materialize strings once, at the end. Plans that don't compile
        // (negation, nested quantifiers, …) fall through to the legacy
        // string evaluator on the same worlds — answers are identical either
        // way (property-tested in `tests/interned.rs`).
        if let Some(columnar) = &worlds.columnar {
            if let Some(plan) = CqPlan::compile(query, free_vars) {
                return self.certain_answers_columnar(columnar, &plan);
            }
        }
        // One streamed intersection over a slice of worlds: peak memory is
        // one answer set plus the accumulator, never all worlds at once.
        let intersect = |dbs: &[Database]| -> Result<Option<BTreeSet<Tuple>>> {
            let mut certain: Option<BTreeSet<Tuple>> = None;
            for db in dbs {
                let these = QueryEvaluator::new(db)
                    .answers(query, free_vars)
                    .map_err(CoreError::from)?;
                certain = Some(match certain {
                    None => these,
                    Some(acc) => acc.intersection(&these).cloned().collect(),
                });
            }
            Ok(certain)
        };
        let databases = &worlds.databases;
        let exec = if databases.len() >= Self::MIN_PARALLEL_WORLDS {
            self.query_exec()
        } else {
            Executor::sequential()
        };
        let workers = exec.workers_for(databases.len());
        if workers <= 1 {
            return Ok(intersect(databases)?.unwrap_or_default());
        }
        // Parallel: each worker streams one contiguous chunk, so at most
        // `workers` partial intersections are live simultaneously.
        let chunks: Vec<&[Database]> = databases
            .chunks(databases.len().div_ceil(workers))
            .collect();
        let per_chunk = exec.try_map(&chunks, |chunk| intersect(chunk))?;
        let mut certain: Option<BTreeSet<Tuple>> = None;
        for partial in per_chunk.into_iter().flatten() {
            certain = Some(match certain {
                None => partial,
                Some(acc) => acc.intersection(&partial).cloned().collect(),
            });
        }
        Ok(certain.unwrap_or_default())
    }

    /// The columnar twin of the legacy intersection in
    /// [`QueryEngine::certain_answers`]: the same chunked parallel fold, but
    /// each per-world answer set is a `BTreeSet<Vec<u32>>` of symbol rows.
    /// Only the final certain set pays string materialization
    /// ([`CqPlan::materialize`]).
    fn certain_answers_columnar(
        &self,
        worlds: &[relalg::ColumnarDatabase],
        plan: &CqPlan,
    ) -> Result<BTreeSet<Tuple>> {
        let intersect = |dbs: &[relalg::ColumnarDatabase]| -> Result<Option<BTreeSet<Vec<u32>>>> {
            let mut certain: Option<BTreeSet<Vec<u32>>> = None;
            for db in dbs {
                let these = plan.answers(db).map_err(CoreError::from)?;
                certain = Some(match certain {
                    None => these,
                    Some(acc) => acc.intersection(&these).cloned().collect(),
                });
            }
            Ok(certain)
        };
        let exec = if worlds.len() >= Self::MIN_PARALLEL_WORLDS {
            self.query_exec()
        } else {
            Executor::sequential()
        };
        let workers = exec.workers_for(worlds.len());
        let certain = if workers <= 1 {
            intersect(worlds)?
        } else {
            let chunks: Vec<&[relalg::ColumnarDatabase]> =
                worlds.chunks(worlds.len().div_ceil(workers)).collect();
            let per_chunk = exec.try_map(&chunks, |chunk| intersect(chunk))?;
            let mut certain: Option<BTreeSet<Vec<u32>>> = None;
            for partial in per_chunk.into_iter().flatten() {
                certain = Some(match certain {
                    None => partial,
                    Some(acc) => acc.intersection(&partial).cloned().collect(),
                });
            }
            certain
        };
        Ok(CqPlan::materialize(
            &certain.unwrap_or_default(),
            &self.symbols,
        ))
    }

    /// Bytes a retained grounding state charges against the cache budget:
    /// exact pointer-identity accounting
    /// ([`datalog::IncrementalGround::exact_bytes`]) on the interned data
    /// plane, the legacy element-count estimate otherwise.
    fn state_bytes(&self, state: &datalog::IncrementalGround) -> usize {
        if self.interned_data_plane {
            state.exact_bytes()
        } else {
            state.approx_bytes()
        }
    }

    /// Index freshly decoded worlds as columnar id blocks against the
    /// store's symbol table — `None` on the legacy path
    /// ([`QueryEngineBuilder::interned_data_plane`] off). Solver-introduced
    /// constants the store has never seen are interned here, so the table
    /// stays total over everything the cache holds.
    fn columnar_worlds(&self, databases: &[Database]) -> Option<Vec<relalg::ColumnarDatabase>> {
        self.interned_data_plane.then(|| {
            databases
                .iter()
                .map(|db| relalg::ColumnarDatabase::from_database(db, &self.symbols))
                .collect()
        })
    }
}

/// The two ASP specification flavours behind one preparation pipeline
/// (build → fingerprint → ground → solve → decode).
enum SpecProgram {
    Direct(crate::asp::AnnotatedSpec),
    Transitive(crate::asp::TransitiveSpec),
}

impl SpecProgram {
    fn program(&self) -> &datalog::Program {
        match self {
            SpecProgram::Direct(spec) => &spec.program,
            SpecProgram::Transitive(spec) => &spec.program,
        }
    }

    fn solution_predicate(&self, system: &P2PSystem, relation: &str) -> String {
        match self {
            SpecProgram::Direct(spec) => spec.solution_predicate(relation),
            SpecProgram::Transitive(spec) => spec.solution_predicate(system, relation),
        }
    }

    fn solution_databases(&self, system: &P2PSystem, sets: &AnswerSets) -> Result<Vec<Database>> {
        match self {
            SpecProgram::Direct(spec) => spec.solution_databases(sets),
            SpecProgram::Transitive(spec) => spec.solution_databases(system, sets),
        }
    }

    fn provenance(&self, sets: &AnswerSets) -> Provenance {
        match self {
            SpecProgram::Direct(_) => Provenance::Asp {
                answer_set_count: sets.len(),
                branch_nodes: sets.branch_nodes,
                used_shift: sets.used_shift,
            },
            SpecProgram::Transitive(_) => Provenance::TransitiveAsp {
                answer_set_count: sets.len(),
                branch_nodes: sets.branch_nodes,
                used_shift: sets.used_shift,
            },
        }
    }
}

/// The decoded output of one solve run, with the solve timing and the
/// grounding-size counters the perf-smoke gate tracks.
struct SolvedSpec {
    sets: AnswerSets,
    solve_nanos: u64,
    grounded_rules: usize,
    grounded_atoms: usize,
}

/// Solve an already-instantiated ground program (built by the grounder or
/// patched by [`datalog::incremental`]). Stable-model search fans out across
/// `exec`'s workers.
fn solve_prepared(
    ground: datalog::GroundProgram,
    config: SolverConfig,
    exec: &Executor,
    recorder: &dyn Recorder,
) -> Result<SolvedSpec> {
    // Counters before solving: the HCF shift rewrites the ground program,
    // so `result.ground` would not reflect what the grounder instantiated.
    let grounded_rules = ground.rule_count();
    let grounded_atoms = ground.atom_count();
    let span = Span::enter(recorder, "solve");
    let result = solve_ground_recorded(ground, config, exec, recorder).map_err(CoreError::from)?;
    let solve_nanos = duration_nanos(span.finish());
    let sets = result
        .answer_sets
        .iter()
        .map(|s| result.ground.decode(s))
        .collect();
    Ok(SolvedSpec {
        sets: AnswerSets {
            sets,
            branch_nodes: result.branch_nodes,
            used_shift: result.used_shift,
        },
        solve_nanos,
        grounded_rules,
        grounded_atoms,
    })
}

/// Translate an update delta into program-level base-fact atoms: relation
/// names are the fact predicates of the specification programs
/// ([`crate::asp::encode::facts_for_system`]) and values encode through
/// [`crate::asp::encode::encode_value`], so a relational delta is also a
/// logic-program delta verbatim. With a symbol table (the interned data
/// plane), constant arguments alias the store's shared text
/// ([`crate::asp::encode::encode_value_shared`]) instead of allocating per
/// atom.
fn program_delta_atoms(
    delta: &relalg::Delta,
    symbols: Option<&relalg::SymbolTable>,
) -> (Vec<datalog::GroundAtom>, Vec<datalog::GroundAtom>) {
    let encode = |atom: &relalg::database::GroundAtom| {
        let args: Vec<Arc<str>> = atom
            .tuple
            .iter()
            .map(|v| match symbols {
                Some(symbols) => crate::asp::encode::encode_value_shared(v, symbols),
                None => Arc::from(crate::asp::encode::encode_value(v).as_str()),
            })
            .collect();
        datalog::GroundAtom {
            predicate: atom.relation.to_string(),
            strong_neg: false,
            args,
        }
    };
    (
        delta.insertions.iter().map(encode).collect(),
        delta.deletions.iter().map(encode).collect(),
    )
}

/// The generalized binding pattern of every relation in a query: position
/// `i` is `Some(c)` exactly when *every* occurrence of the relation in the
/// formula carries the constant `c` (encoded as a program symbol) at
/// position `i`. Restricting a relation's extension to such a pattern
/// preserves the answers of every atom occurrence, which makes the pattern
/// safe to hand to the grounder as a [`datalog::QuerySeed`]. Constants the
/// store has interned alias its shared text when `symbols` is given.
fn query_binding_patterns(
    query: &Formula,
    symbols: Option<&relalg::SymbolTable>,
) -> BTreeMap<String, Vec<Option<Arc<str>>>> {
    fn meet(
        out: &mut BTreeMap<String, Vec<Option<Arc<str>>>>,
        relation: &str,
        pattern: Vec<Option<Arc<str>>>,
    ) {
        match out.get_mut(relation) {
            None => {
                out.insert(relation.to_string(), pattern);
            }
            Some(existing) => {
                if existing.len() != pattern.len() {
                    // Inconsistent arity (rejected later by evaluation):
                    // fall back to fully unbound.
                    existing.iter_mut().for_each(|slot| *slot = None);
                    return;
                }
                for (slot, new) in existing.iter_mut().zip(pattern) {
                    if *slot != new {
                        *slot = None;
                    }
                }
            }
        }
    }
    fn walk(
        query: &Formula,
        symbols: Option<&relalg::SymbolTable>,
        out: &mut BTreeMap<String, Vec<Option<Arc<str>>>>,
    ) {
        match query {
            Formula::Atom { relation, terms } => {
                let pattern = terms
                    .iter()
                    .map(|t| {
                        t.as_const().map(|v| match symbols {
                            Some(symbols) => crate::asp::encode::encode_value_shared(v, symbols),
                            None => Arc::from(crate::asp::encode::encode_value(v).as_str()),
                        })
                    })
                    .collect();
                meet(out, relation, pattern);
            }
            Formula::And(parts) | Formula::Or(parts) => {
                for part in parts {
                    walk(part, symbols, out);
                }
            }
            Formula::Not(inner) => walk(inner, symbols, out),
            Formula::Implies(a, b) => {
                walk(a, symbols, out);
                walk(b, symbols, out);
            }
            Formula::Exists(_, inner) | Formula::Forall(_, inner) => walk(inner, symbols, out),
            Formula::Compare { .. } | Formula::True | Formula::False => {}
        }
    }
    let mut out = BTreeMap::new();
    walk(query, symbols, &mut out);
    out
}

/// Reject query features the logic-program translation does not support,
/// mirroring the legacy ASP route.
fn ensure_positive_existential(query: &Formula) -> Result<()> {
    if rewriting::supports_query(query) {
        Ok(())
    } else {
        Err(CoreError::Unsupported(
            "the ASP query translation supports positive existential queries only".to_string(),
        ))
    }
}

/// Answer variables must be bound by a relational atom in every disjunct for
/// the evaluation to be domain independent (same restriction as the legacy
/// query-program translation). Enforced uniformly by every built-in
/// strategy, so an ill-formed query fails the same way regardless of the
/// mechanism that would answer it.
fn check_free_vars_bound(query: &Formula, free_vars: &[String]) -> Result<()> {
    fn bound_everywhere(query: &Formula, var: &str) -> bool {
        match query {
            Formula::Atom { terms, .. } => terms.iter().any(|t| t.as_var() == Some(var)),
            Formula::And(parts) => parts.iter().any(|p| bound_everywhere(p, var)),
            Formula::Or(parts) => parts.iter().all(|p| bound_everywhere(p, var)),
            Formula::Exists(_, inner) => bound_everywhere(inner, var),
            _ => false,
        }
    }
    for v in free_vars {
        if !bound_everywhere(query, v) {
            return Err(CoreError::Unsupported(format!(
                "answer variable `{v}` is not bound by a relational atom in every disjunct"
            )));
        }
    }
    Ok(())
}

// ----------------------------------------------------------------------
// The four built-in strategies.
// ----------------------------------------------------------------------

/// Naive solution enumeration (Definition 5), wrapped for the engine.
pub struct NaiveStrategy;

impl AnsweringStrategy for NaiveStrategy {
    fn name(&self) -> &'static str {
        StrategyKind::Naive.label()
    }

    fn supports(&self, engine: &QueryEngine, peer: &PeerId, query: &Formula) -> bool {
        engine.check_language(peer, query).is_ok()
    }

    fn answer(
        &self,
        engine: &QueryEngine,
        peer: &PeerId,
        query: &Formula,
        free_vars: &[String],
    ) -> Result<Answers> {
        engine.check_language(peer, query)?;
        check_free_vars_bound(query, free_vars)?;
        let (worlds, cache_hit) = engine.naive_worlds(peer)?;
        engine.answers_from_worlds(StrategyKind::Naive, &worlds, cache_hit, query, free_vars)
    }
}

/// First-order rewriting (Example 2), wrapped for the engine.
pub struct RewritingStrategy;

impl AnsweringStrategy for RewritingStrategy {
    fn name(&self) -> &'static str {
        StrategyKind::Rewriting.label()
    }

    fn supports(&self, engine: &QueryEngine, peer: &PeerId, query: &Formula) -> bool {
        engine.check_language(peer, query).is_ok()
            && rewriting::supports_peer(engine.topology(), peer)
            && rewriting::supports_query(query)
    }

    fn answer(
        &self,
        engine: &QueryEngine,
        peer: &PeerId,
        query: &Formula,
        free_vars: &[String],
    ) -> Result<Answers> {
        check_free_vars_bound(query, free_vars)?;
        // Preparation is the (cached) global instance; the per-query rewrite
        // is evaluation work, so `prepare_time` stays 0 on a cache hit (the
        // hit reports the original cost via `cached_prepare_time` instead).
        let (global, cache_hit, prepare_nanos, cached_prepare_nanos) = engine.global_instance()?;
        let span = Span::enter(engine.recorder().as_ref(), "eval");
        let rewritten = rewriting::rewrite_query(engine.topology(), peer, query)?;
        let evaluator = QueryEvaluator::new(&global);
        let tuples = evaluator
            .answers(&rewritten, free_vars)
            .map_err(CoreError::from)?;
        let eval_nanos = duration_nanos(span.finish());
        Ok(Answers {
            tuples,
            stats: EngineStats {
                strategy: StrategyKind::Rewriting,
                cache_hit,
                prepare_nanos,
                ground_nanos: 0,
                solve_nanos: 0,
                eval_nanos,
                cached_prepare_nanos,
                worlds: 1,
                grounded_rules: 0,
                grounded_atoms: 0,
                regrounded_rules: 0,
                auto_reason: None,
            },
            provenance: Provenance::Rewriting { rewritten },
        })
    }
}

/// Cautious reasoning over the direct specification program, wrapped for the
/// engine.
pub struct AspStrategy;

impl AnsweringStrategy for AspStrategy {
    fn name(&self) -> &'static str {
        StrategyKind::Asp.label()
    }

    fn supports(&self, engine: &QueryEngine, peer: &PeerId, query: &Formula) -> bool {
        engine.check_language(peer, query).is_ok() && rewriting::supports_query(query)
    }

    fn answer(
        &self,
        engine: &QueryEngine,
        peer: &PeerId,
        query: &Formula,
        free_vars: &[String],
    ) -> Result<Answers> {
        engine.check_language(peer, query)?;
        ensure_positive_existential(query)?;
        check_free_vars_bound(query, free_vars)?;
        let (worlds, cache_hit) = engine.asp_worlds(peer, false, query)?;
        engine.answers_from_worlds(StrategyKind::Asp, &worlds, cache_hit, query, free_vars)
    }
}

/// Cautious reasoning over the combined transitive program, wrapped for the
/// engine.
pub struct TransitiveAspStrategy;

impl AnsweringStrategy for TransitiveAspStrategy {
    fn name(&self) -> &'static str {
        StrategyKind::TransitiveAsp.label()
    }

    fn supports(&self, engine: &QueryEngine, peer: &PeerId, query: &Formula) -> bool {
        engine.check_language(peer, query).is_ok() && rewriting::supports_query(query)
    }

    fn answer(
        &self,
        engine: &QueryEngine,
        peer: &PeerId,
        query: &Formula,
        free_vars: &[String],
    ) -> Result<Answers> {
        engine.check_language(peer, query)?;
        ensure_positive_existential(query)?;
        check_free_vars_bound(query, free_vars)?;
        let (worlds, cache_hit) = engine.asp_worlds(peer, true, query)?;
        engine.answers_from_worlds(
            StrategyKind::TransitiveAsp,
            &worlds,
            cache_hit,
            query,
            free_vars,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{example1_system, TrustLevel};
    use relalg::RelationSchema;

    fn example1_engine(strategy: Strategy) -> QueryEngine {
        QueryEngine::builder(example1_system())
            .strategy(strategy)
            .build()
    }

    fn r1_query() -> (Formula, Vec<String>) {
        (Formula::atom("R1", vec!["X", "Y"]), vars(&["X", "Y"]))
    }

    fn expected_example1() -> BTreeSet<Tuple> {
        BTreeSet::from([
            Tuple::strs(["a", "b"]),
            Tuple::strs(["c", "d"]),
            Tuple::strs(["a", "e"]),
        ])
    }

    #[test]
    fn all_four_strategies_agree_on_example1() {
        let p1 = PeerId::new("P1");
        let (query, fv) = r1_query();
        for strategy in [
            Strategy::Naive,
            Strategy::Rewriting,
            Strategy::Asp,
            Strategy::TransitiveAsp,
        ] {
            let engine = example1_engine(strategy);
            let answers = engine.answer(&p1, &query, &fv).unwrap();
            assert_eq!(answers.tuples, expected_example1(), "strategy {strategy:?}");
        }
    }

    #[test]
    fn auto_selects_rewriting_on_the_example2_class() {
        let engine = example1_engine(Strategy::Auto);
        let p1 = PeerId::new("P1");
        let (query, fv) = r1_query();
        assert_eq!(
            engine.resolve(Strategy::Auto, &p1, &query),
            StrategyKind::Rewriting
        );
        let answers = engine.answer(&p1, &query, &fv).unwrap();
        assert_eq!(answers.stats.strategy, StrategyKind::Rewriting);
        assert!(matches!(answers.provenance, Provenance::Rewriting { .. }));
        assert_eq!(answers.tuples, expected_example1());
    }

    #[test]
    fn auto_falls_back_to_asp_on_referential_decs() {
        use constraints::builders::mixed_referential;
        let mut sys = P2PSystem::new();
        sys.add_peer("P").unwrap();
        sys.add_peer("Q").unwrap();
        let p = PeerId::new("P");
        let q = PeerId::new("Q");
        for (peer, rel) in [(&p, "R1"), (&p, "R2"), (&q, "S1"), (&q, "S2")] {
            sys.add_relation(peer, RelationSchema::new(rel, &["x", "y"]))
                .unwrap();
        }
        sys.insert(&p, "R1", Tuple::strs(["a", "b"])).unwrap();
        sys.insert(&q, "S1", Tuple::strs(["c", "b"])).unwrap();
        sys.insert(&q, "S2", Tuple::strs(["c", "e"])).unwrap();
        sys.add_dec(
            &p,
            &q,
            mixed_referential("sigma3", "R1", "S1", "R2", "S2").unwrap(),
        )
        .unwrap();
        sys.set_trust(&p, TrustLevel::Less, &q).unwrap();

        let engine = QueryEngine::new(sys);
        let query = Formula::atom("R1", vec!["X", "Y"]);
        assert_eq!(
            engine.resolve(Strategy::Auto, &p, &query),
            StrategyKind::Asp
        );
        let answers = engine.answer(&p, &query, &vars(&["X", "Y"])).unwrap();
        assert_eq!(answers.stats.strategy, StrategyKind::Asp);
        assert!(matches!(answers.provenance, Provenance::Asp { .. }));
    }

    #[test]
    fn auto_falls_back_to_asp_when_local_ics_exist() {
        let mut sys = example1_system();
        let p1 = PeerId::new("P1");
        sys.add_local_ic(&p1, constraints::builders::key_denial("fd", "R1").unwrap())
            .unwrap();
        let engine = QueryEngine::new(sys);
        let (query, _) = r1_query();
        assert_eq!(
            engine.resolve(Strategy::Auto, &p1, &query),
            StrategyKind::Asp
        );
    }

    #[test]
    fn auto_falls_back_to_asp_on_non_positive_queries() {
        let engine = example1_engine(Strategy::Auto);
        let p1 = PeerId::new("P1");
        let negated = Formula::not(Formula::atom("R1", vec!["X", "Y"]));
        assert_eq!(
            engine.resolve(Strategy::Auto, &p1, &negated),
            StrategyKind::Asp
        );
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let engine = example1_engine(Strategy::Asp);
        let p1 = PeerId::new("P1");
        let (query, fv) = r1_query();
        let first = engine.answer(&p1, &query, &fv).unwrap();
        assert!(!first.stats.cache_hit);
        assert!(first.stats.prepare_time() > Duration::ZERO);
        assert!(first.stats.cached_prepare_time().is_none());
        let second = engine.answer(&p1, &query, &fv).unwrap();
        assert!(second.stats.cache_hit);
        assert_eq!(second.stats.prepare_time(), Duration::ZERO);
        // The hit reports what it saved: the original preparation cost.
        assert_eq!(
            second.stats.cached_prepare_time(),
            Some(first.stats.prepare_time())
        );
        assert_eq!(first.tuples, second.tuples);

        // A different query against the same peer also skips preparation.
        let projected = Formula::exists(vec!["Y"], Formula::atom("R1", vec!["X", "Y"]));
        let third = engine.answer(&p1, &projected, &vars(&["X"])).unwrap();
        assert!(third.stats.cache_hit);
        assert_eq!(
            third.tuples,
            BTreeSet::from([Tuple::strs(["a"]), Tuple::strs(["c"])])
        );
    }

    #[test]
    fn naive_strategy_reports_solution_provenance() {
        let engine = example1_engine(Strategy::Naive);
        let p1 = PeerId::new("P1");
        let (query, fv) = r1_query();
        let answers = engine.answer(&p1, &query, &fv).unwrap();
        assert_eq!(answers.stats.worlds, 2);
        match &answers.provenance {
            Provenance::Naive {
                solution_count,
                search,
            } => {
                assert_eq!(*solution_count, 2);
                assert!(search.states_explored > 0);
            }
            other => panic!("unexpected provenance {other:?}"),
        }
    }

    #[test]
    fn asp_strategy_reports_model_counts_and_timings() {
        let engine = example1_engine(Strategy::Asp);
        let p1 = PeerId::new("P1");
        let (query, fv) = r1_query();
        let answers = engine.answer(&p1, &query, &fv).unwrap();
        assert_eq!(answers.stats.worlds, 2);
        assert!(answers.stats.ground_time() > Duration::ZERO);
        assert!(answers.stats.total_time() >= answers.stats.prepare_time());
        match &answers.provenance {
            Provenance::Asp {
                answer_set_count,
                used_shift,
                ..
            } => {
                assert_eq!(*answer_set_count, 2);
                assert!(used_shift);
            }
            other => panic!("unexpected provenance {other:?}"),
        }
    }

    #[test]
    fn conjunctive_join_queries_agree_across_strategies() {
        // ∃y (R1(x, y) ∧ R1(z, y)) — self-join on the second column of the
        // peer's (virtually repaired) relation.
        let engine = example1_engine(Strategy::Auto);
        let p1 = PeerId::new("P1");
        let q = Formula::exists(
            vec!["Y"],
            Formula::and(vec![
                Formula::atom("R1", vec!["X", "Y"]),
                Formula::atom("R1", vec!["Z", "Y"]),
            ]),
        );
        let fv = vars(&["X", "Z"]);
        let semantic = engine.answer_with(Strategy::Naive, &p1, &q, &fv).unwrap();
        let asp = engine.answer_with(Strategy::Asp, &p1, &q, &fv).unwrap();
        assert_eq!(semantic.tuples, asp.tuples);
        assert!(asp.contains(&Tuple::strs(["a", "a"])));
    }

    #[test]
    fn union_queries_agree_across_strategies() {
        let engine = example1_engine(Strategy::Auto);
        let p1 = PeerId::new("P1");
        let q = Formula::or(vec![
            Formula::atom("R1", vec!["X", "X"]),
            Formula::exists(vec!["Y"], Formula::atom("R1", vec!["X", "Y"])),
        ]);
        let fv = vars(&["X"]);
        let semantic = engine.answer_with(Strategy::Naive, &p1, &q, &fv).unwrap();
        let asp = engine.answer_with(Strategy::Asp, &p1, &q, &fv).unwrap();
        assert_eq!(semantic.tuples, asp.tuples);
        assert!(asp.contains(&Tuple::strs(["a"])));
        assert!(asp.contains(&Tuple::strs(["c"])));
    }

    #[test]
    fn strategies_share_one_engine_via_answer_with() {
        let engine = example1_engine(Strategy::Auto);
        let p1 = PeerId::new("P1");
        let (query, fv) = r1_query();
        let mut results = Vec::new();
        for strategy in [Strategy::Naive, Strategy::Rewriting, Strategy::Asp] {
            results.push(
                engine
                    .answer_with(strategy, &p1, &query, &fv)
                    .unwrap()
                    .tuples,
            );
        }
        assert!(results.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn language_and_fragment_violations_error() {
        let engine = example1_engine(Strategy::Asp);
        let p1 = PeerId::new("P1");
        // Foreign relation.
        let foreign = Formula::atom("R2", vec!["X", "Y"]);
        assert!(matches!(
            engine.answer(&p1, &foreign, &vars(&["X", "Y"])),
            Err(CoreError::UnknownRelation { .. })
        ));
        // Negated query on the ASP route.
        let negated = Formula::not(Formula::atom("R1", vec!["X", "Y"]));
        assert!(matches!(
            engine.answer_with(Strategy::Asp, &p1, &negated, &vars(&["X", "Y"])),
            Err(CoreError::Unsupported(_))
        ));
        // Unbound answer variable: rejected uniformly by every strategy.
        let (query, _) = r1_query();
        for strategy in [
            Strategy::Naive,
            Strategy::Rewriting,
            Strategy::Asp,
            Strategy::TransitiveAsp,
        ] {
            assert!(
                matches!(
                    engine.answer_with(strategy, &p1, &query, &vars(&["Z"])),
                    Err(CoreError::Unsupported(_))
                ),
                "strategy {strategy:?} must reject unbound answer variables"
            );
        }
    }

    #[test]
    fn no_solution_peers_have_no_certain_answers() {
        let mut sys = P2PSystem::new();
        sys.add_peer("A").unwrap();
        sys.add_peer("B").unwrap();
        let a = PeerId::new("A");
        let b = PeerId::new("B");
        sys.add_relation(&a, RelationSchema::new("RA", &["x"]))
            .unwrap();
        sys.add_relation(&b, RelationSchema::new("RB", &["x"]))
            .unwrap();
        sys.insert(&b, "RB", Tuple::strs(["v"])).unwrap();
        sys.add_dec(
            &a,
            &b,
            constraints::builders::full_inclusion("d", "RB", "RA", 1).unwrap(),
        )
        .unwrap();
        sys.set_trust(&a, TrustLevel::Less, &b).unwrap();
        sys.add_local_ic(
            &a,
            constraints::Constraint::new(
                "empty_ra",
                vec![constraints::AtomPattern::parse("RA", &["X"])],
                vec![],
                constraints::ConstraintHead::False,
            )
            .unwrap(),
        )
        .unwrap();
        let engine = QueryEngine::new(sys);
        let query = Formula::atom("RA", vec!["X"]);
        for strategy in [Strategy::Naive, Strategy::Asp] {
            let answers = engine
                .answer_with(strategy, &a, &query, &vars(&["X"]))
                .unwrap();
            assert_eq!(answers.stats.worlds, 0, "strategy {strategy:?}");
            assert!(answers.is_empty());
        }
    }

    #[test]
    fn custom_strategies_plug_in() {
        struct Constant;
        impl AnsweringStrategy for Constant {
            fn name(&self) -> &'static str {
                "constant"
            }
            fn supports(&self, _: &QueryEngine, _: &PeerId, _: &Formula) -> bool {
                true
            }
            fn answer(
                &self,
                _: &QueryEngine,
                _: &PeerId,
                _: &Formula,
                _: &[String],
            ) -> Result<Answers> {
                Ok(Answers {
                    tuples: BTreeSet::from([Tuple::strs(["fixed"])]),
                    stats: EngineStats {
                        strategy: StrategyKind::Custom,
                        cache_hit: false,
                        prepare_nanos: 0,
                        ground_nanos: 0,
                        solve_nanos: 0,
                        eval_nanos: 0,
                        cached_prepare_nanos: 0,
                        worlds: 1,
                        grounded_rules: 0,
                        grounded_atoms: 0,
                        regrounded_rules: 0,
                        auto_reason: None,
                    },
                    provenance: Provenance::Custom {
                        strategy: "constant".to_string(),
                    },
                })
            }
        }
        let engine = QueryEngine::builder(example1_system())
            .custom_strategy(Box::new(Constant))
            .build();
        let (query, fv) = r1_query();
        let answers = engine.answer(&PeerId::new("P1"), &query, &fv).unwrap();
        assert_eq!(answers.stats.strategy, StrategyKind::Custom);
        assert!(answers.contains(&Tuple::strs(["fixed"])));
    }

    #[test]
    fn unsupportive_custom_strategies_are_not_dispatched() {
        struct Never;
        impl AnsweringStrategy for Never {
            fn name(&self) -> &'static str {
                "never"
            }
            fn supports(&self, _: &QueryEngine, _: &PeerId, _: &Formula) -> bool {
                false
            }
            fn answer(
                &self,
                _: &QueryEngine,
                _: &PeerId,
                _: &Formula,
                _: &[String],
            ) -> Result<Answers> {
                panic!("answer must not be reached when supports() is false");
            }
        }
        let engine = QueryEngine::builder(example1_system())
            .custom_strategy(Box::new(Never))
            .build();
        let (query, fv) = r1_query();
        assert!(matches!(
            engine.answer(&PeerId::new("P1"), &query, &fv),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn warm_rewriting_reports_zero_prepare_time() {
        let engine = example1_engine(Strategy::Rewriting);
        let p1 = PeerId::new("P1");
        let (query, fv) = r1_query();
        let _ = engine.answer(&p1, &query, &fv).unwrap();
        let warm = engine.answer(&p1, &query, &fv).unwrap();
        assert!(warm.stats.cache_hit);
        assert_eq!(warm.stats.prepare_time(), Duration::ZERO);
        assert!(warm.stats.cached_prepare_time().is_some());
    }

    #[test]
    fn commit_bumps_version_and_invalidates_only_the_closure() {
        use relalg::database::GroundAtom;
        use relalg::Delta;
        // Example 1: P1's closure is {P1, P2, P3}; P3's closure is {P3}.
        let engine = example1_engine(Strategy::Asp);
        let p1 = PeerId::new("P1");
        let p2 = PeerId::new("P2");
        let p3 = PeerId::new("P3");
        let (query, fv) = r1_query();
        let q3 = Formula::atom("R3", vec!["X", "Y"]);
        // Warm both peers.
        let _ = engine.answer(&p1, &query, &fv).unwrap();
        let _ = engine.answer(&p3, &q3, &fv).unwrap();
        assert_eq!(engine.cached_artifact_count(), 2);
        assert_eq!(engine.version_of(&p2), 0);

        // Commit an insertion into P2: R2(x, y).
        let delta = Delta::from_changes([GroundAtom::new("R2", Tuple::strs(["x", "y"]))], []);
        let version = engine.commit_delta(&p2, &delta).unwrap();
        assert_eq!(version, 1);
        assert_eq!(engine.version_of(&p2), 1);
        assert_eq!(engine.versions()[&p1], 0);

        // P1's artifact was staled and repaired *by the committing thread*
        // (patch-on-commit); P3's stayed warm untouched.
        assert_eq!(engine.cached_artifact_count(), 2);
        assert_eq!(engine.stale_artifact_count(), 0);
        assert_eq!(engine.metrics().patched, 1);
        assert!(engine.metrics().invalidated >= 1);
        let warm = engine.answer(&p3, &q3, &fv).unwrap();
        assert!(warm.stats.cache_hit);
        // The reader *hits* the repaired artifact — the patch cost moved to
        // the commit; the hit still reports the incremental re-derivation.
        let recomputed = engine.answer(&p1, &query, &fv).unwrap();
        assert!(recomputed.stats.cache_hit);
        assert!(
            recomputed.stats.regrounded_rules < recomputed.stats.grounded_rules,
            "patch re-derived {} of {} rules",
            recomputed.stats.regrounded_rules,
            recomputed.stats.grounded_rules
        );
        // The repaired answers include the imported new tuple and agree
        // with a fresh engine over the mutated system.
        assert!(recomputed.contains(&Tuple::strs(["x", "y"])));
        let fresh = QueryEngine::builder(engine.snapshot_system().unwrap())
            .strategy(Strategy::Asp)
            .build();
        assert_eq!(
            fresh.answer(&p1, &query, &fv).unwrap().tuples,
            recomputed.tuples
        );
    }

    #[test]
    fn incremental_disabled_reproduces_drop_on_commit() {
        use relalg::database::GroundAtom;
        use relalg::Delta;
        let engine = QueryEngine::builder(example1_system())
            .strategy(Strategy::Asp)
            .incremental_reground(false)
            .build();
        assert!(!engine.incremental_reground());
        let p1 = PeerId::new("P1");
        let p2 = PeerId::new("P2");
        let (query, fv) = r1_query();
        let _ = engine.answer(&p1, &query, &fv).unwrap();
        let delta = Delta::from_changes([GroundAtom::new("R2", Tuple::strs(["x", "y"]))], []);
        engine.commit_delta(&p2, &delta).unwrap();
        // The artifact is gone, not stale; the re-query re-grounds fully.
        assert_eq!(engine.cached_artifact_count(), 0);
        let recomputed = engine.answer(&p1, &query, &fv).unwrap();
        assert!(!recomputed.stats.cache_hit);
        assert_eq!(
            recomputed.stats.regrounded_rules,
            recomputed.stats.grounded_rules
        );
        assert_eq!(engine.metrics().patched, 0);
        assert!(recomputed.contains(&Tuple::strs(["x", "y"])));
    }

    #[test]
    fn commits_outside_the_slice_keep_artifacts_warm() {
        use relalg::database::GroundAtom;
        use relalg::Delta;
        // One peer owning two unconstrained relations: the slice of an
        // A-query never mentions B, so a commit into B cannot affect it and
        // the artifact's stamp is refreshed in place.
        let mut sys = P2PSystem::new();
        sys.add_peer("P").unwrap();
        let p = PeerId::new("P");
        sys.add_relation(&p, RelationSchema::new("A", &["x", "y"]))
            .unwrap();
        sys.add_relation(&p, RelationSchema::new("B", &["x", "y"]))
            .unwrap();
        sys.insert(&p, "A", Tuple::strs(["a", "1"])).unwrap();
        sys.insert(&p, "B", Tuple::strs(["b", "1"])).unwrap();
        let engine = QueryEngine::builder(sys).strategy(Strategy::Asp).build();
        let qa = Formula::atom("A", vec!["X", "Y"]);
        let fv = vars(&["X", "Y"]);
        let cold = engine.answer(&p, &qa, &fv).unwrap();
        let delta = Delta::from_changes([GroundAtom::new("B", Tuple::strs(["b", "2"]))], []);
        engine.commit_delta(&p, &delta).unwrap();
        assert_eq!(engine.stale_artifact_count(), 0);
        let warm = engine.answer(&p, &qa, &fv).unwrap();
        assert!(warm.stats.cache_hit, "B-delta cannot touch the A-slice");
        assert_eq!(warm.tuples, cold.tuples);
        // A commit into A stales the artifact, and the committing thread
        // repairs it before returning: the next read is a plain hit.
        let delta = Delta::from_changes([GroundAtom::new("A", Tuple::strs(["a", "2"]))], []);
        engine.commit_delta(&p, &delta).unwrap();
        assert_eq!(engine.stale_artifact_count(), 0);
        assert_eq!(engine.metrics().patched, 1);
        let repaired = engine.answer(&p, &qa, &fv).unwrap();
        assert!(repaired.stats.cache_hit);
        assert!(repaired.contains(&Tuple::strs(["a", "2"])));
    }

    #[test]
    fn insert_then_delete_commits_net_to_a_warm_artifact() {
        use relalg::database::GroundAtom;
        use relalg::Delta;
        let engine = example1_engine(Strategy::Asp);
        let p1 = PeerId::new("P1");
        let p2 = PeerId::new("P2");
        let (query, fv) = r1_query();
        let cold = engine.answer(&p1, &query, &fv).unwrap();
        let atom = GroundAtom::new("R2", Tuple::strs(["x", "y"]));
        let insert = Delta::from_changes([atom.clone()], []);
        let delete = Delta::from_changes([], [atom]);
        // Each commit stales and immediately repairs the artifact, so the
        // reader-facing cache never shows a stale entry.
        engine.commit_delta(&p2, &insert).unwrap();
        assert_eq!(engine.stale_artifact_count(), 0);
        let imported = engine.answer(&p1, &query, &fv).unwrap();
        assert!(imported.stats.cache_hit);
        assert!(imported.contains(&Tuple::strs(["x", "y"])));
        engine.commit_delta(&p2, &delete).unwrap();
        // The delete nets the instance back to the original: warm answers
        // return to the cold baseline.
        assert_eq!(engine.stale_artifact_count(), 0);
        assert_eq!(engine.metrics().patched, 2);
        let warm = engine.answer(&p1, &query, &fv).unwrap();
        assert!(warm.stats.cache_hit);
        assert_eq!(warm.tuples, cold.tuples);
    }

    #[test]
    fn cache_capacity_evicts_least_recently_used_entries() {
        let engine = QueryEngine::builder(example1_system())
            .strategy(Strategy::Asp)
            .cache_capacity(1) // everything overflows: hard thrash
            .build();
        assert_eq!(engine.cache_capacity(), Some(1));
        let p1 = PeerId::new("P1");
        let (query, fv) = r1_query();
        let first = engine.answer(&p1, &query, &fv).unwrap();
        // The sole entry exceeds the budget and is evicted immediately …
        assert_eq!(engine.cached_artifact_count(), 0);
        assert!(engine.metrics().evictions >= 1);
        // … so the repeat query misses but still answers correctly.
        let second = engine.answer(&p1, &query, &fv).unwrap();
        assert!(!second.stats.cache_hit);
        assert_eq!(first.tuples, second.tuples);

        // A budget large enough for one artifact keeps the newest and
        // evicts the oldest.
        let engine = QueryEngine::builder(example1_system())
            .strategy(Strategy::Asp)
            .cache_capacity(200_000)
            .build();
        let p3 = PeerId::new("P3");
        let q3 = Formula::atom("R3", vec!["X", "Y"]);
        let _ = engine.answer(&p1, &query, &fv).unwrap();
        let bytes_one = engine.cached_bytes();
        assert!(bytes_one > 0 && bytes_one <= 200_000, "budget fits one");
        let _ = engine.answer(&p3, &q3, &fv).unwrap();
        if engine.metrics().evictions > 0 {
            // The LRU victim is the older P1 artifact: P3 stays warm.
            let warm = engine.answer(&p3, &q3, &fv).unwrap();
            assert!(warm.stats.cache_hit);
        }
        // Unbounded engines never evict.
        let unbounded = example1_engine(Strategy::Asp);
        let _ = unbounded.answer(&p1, &query, &fv).unwrap();
        let _ = unbounded.answer(&p3, &q3, &fv).unwrap();
        assert_eq!(unbounded.metrics().evictions, 0);
    }

    #[test]
    fn commit_maintains_the_global_instance_incrementally() {
        use relalg::database::GroundAtom;
        use relalg::Delta;
        let engine = example1_engine(Strategy::Rewriting);
        let p1 = PeerId::new("P1");
        let p2 = PeerId::new("P2");
        let (query, fv) = r1_query();
        let _ = engine.answer(&p1, &query, &fv).unwrap();
        let delta = Delta::from_changes([GroundAtom::new("R2", Tuple::strs(["x", "y"]))], []);
        engine.commit_delta(&p2, &delta).unwrap();
        // The rewriting query stays warm and still sees the committed tuple.
        let warm = engine.answer(&p1, &query, &fv).unwrap();
        assert!(warm.stats.cache_hit);
        assert!(warm.contains(&Tuple::strs(["x", "y"])));
    }

    #[test]
    fn flush_and_invalidate_report_dropped_artifacts() {
        let engine = example1_engine(Strategy::Asp);
        let p1 = PeerId::new("P1");
        let p3 = PeerId::new("P3");
        let (query, fv) = r1_query();
        let _ = engine.answer(&p1, &query, &fv).unwrap();
        let _ = engine
            .answer(&p3, &Formula::atom("R3", vec!["X", "Y"]), &fv)
            .unwrap();
        // Invalidating P3 drops only P3's artifact (nobody depends on P3
        // except P1 — but P1's stamp includes P3, so both go).
        assert_eq!(engine.invalidate_peers([p3.clone()]), 2);
        assert_eq!(engine.cached_artifact_count(), 0);
        let _ = engine.answer(&p1, &query, &fv).unwrap();
        assert!(engine.flush_cache() >= 1);
        assert_eq!(engine.cached_artifact_count(), 0);
        let metrics = engine.metrics();
        assert!(metrics.hits == 0 && metrics.misses >= 3);
        assert!(metrics.invalidated >= 3);
    }

    #[test]
    fn relevant_peers_mirror_the_dec_graph() {
        let engine = example1_engine(Strategy::Auto);
        let p1 = PeerId::new("P1");
        let p2 = PeerId::new("P2");
        assert_eq!(engine.relevant_peers(&p1).len(), 3);
        assert_eq!(engine.relevant_peers(&p2), BTreeSet::from([p2.clone()]));
    }

    #[test]
    fn answer_batch_matches_a_sequential_loop_for_every_pool_size() {
        let p1 = PeerId::new("P1");
        let p3 = PeerId::new("P3");
        let (query, fv) = r1_query();
        let batch = vec![
            Query::new(p1.clone(), query.clone(), fv.clone()),
            Query::named("P3", Formula::atom("R3", vec!["X", "Y"]), &["X", "Y"]),
            Query::named("P1", Formula::exists(vec!["Y"], query.clone()), &["X"]),
            Query::new(p3.clone(), Formula::atom("R3", vec!["X", "Y"]), fv.clone()),
        ];
        for strategy in [
            Strategy::Naive,
            Strategy::Rewriting,
            Strategy::Asp,
            Strategy::TransitiveAsp,
        ] {
            // Rewriting does not support every peer of example 1; skip the
            // unsupported combinations the same way on both paths.
            let reference: Vec<_> = {
                let engine = example1_engine(strategy);
                batch
                    .iter()
                    .map(|q| engine.answer(&q.peer, &q.query, &q.free_vars))
                    .collect()
            };
            for workers in [1, 2, 8] {
                let engine = QueryEngine::builder(example1_system())
                    .strategy(strategy)
                    .workers(workers)
                    .build();
                let results = engine.answer_batch(&batch);
                assert_eq!(results.len(), batch.len());
                for (i, (got, want)) in results.iter().zip(&reference).enumerate() {
                    match (got, want) {
                        (Ok(g), Ok(w)) => {
                            assert_eq!(
                                g.tuples, w.tuples,
                                "strategy {strategy:?} workers {workers} query {i}"
                            );
                            assert_eq!(g.stats.worlds, w.stats.worlds);
                            assert_eq!(g.provenance, w.provenance);
                        }
                        (Err(_), Err(_)) => {}
                        other => panic!(
                            "strategy {strategy:?} workers {workers} query {i}: \
                             batch and loop disagree on success: {other:?}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn answer_batch_partitions_by_closure() {
        // Example 1: P2 and P3 import from nobody, so their closures are
        // the singletons {P2} and {P3} — disjoint, hence two partitions
        // (repeat queries join their peer's partition in order).
        let engine = QueryEngine::builder(example1_system()).workers(4).build();
        let q2 = Query::named("P2", Formula::atom("R2", vec!["X", "Y"]), &["X", "Y"]);
        let q3 = Query::named("P3", Formula::atom("R3", vec!["X", "Y"]), &["X", "Y"]);
        let disjoint = vec![q2.clone(), q3.clone(), q2.clone()];
        assert_eq!(engine.partition_batch(&disjoint), vec![vec![0, 2], vec![1]]);
        // P1's closure is {P1, P2, P3}: one P1 query collapses the batch
        // into a single partition.
        let (query, fv) = r1_query();
        let collapsed = vec![Query::new(PeerId::new("P1"), query, fv), q2, q3];
        assert_eq!(engine.partition_batch(&collapsed), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn answer_batch_partitions_same_peer_disjoint_slices_concurrently() {
        // Two bound queries on one peer with distinct restrictable slices
        // prepare distinct `(peer, slice)` artifacts — they no longer share
        // a partition, while repeats of one slice still do.
        let engine = QueryEngine::builder(example1_system())
            .strategy(Strategy::Asp)
            .workers(4)
            .build();
        let bound = |c: &str| {
            Query::named(
                "P3",
                Formula::atom_terms(
                    "R3",
                    vec![
                        relalg::query::Term::cnst(relalg::Value::str(c)),
                        relalg::query::Term::var("Y"),
                    ],
                ),
                &["Y"],
            )
        };
        let batch = vec![bound("a"), bound("c"), bound("a")];
        assert_eq!(engine.partition_batch(&batch), vec![vec![0, 2], vec![1]]);
        // Different mechanisms on one peer are independent resources too,
        // but the same slice under one mechanism still unions.
        let unbound = Query::named("P3", Formula::atom("R3", vec!["X", "Y"]), &["X", "Y"]);
        let mixed = vec![unbound.clone(), bound("a"), unbound];
        assert_eq!(engine.partition_batch(&mixed), vec![vec![0, 2], vec![1]]);
        // The batch answers still match the sequential loop.
        let batch = vec![bound("a"), bound("c")];
        let parallel: Vec<_> = engine
            .answer_batch(&batch)
            .into_iter()
            .map(|r| r.unwrap().tuples)
            .collect();
        let sequential_engine = example1_engine(Strategy::Asp);
        let sequential: Vec<_> = batch
            .iter()
            .map(|q| {
                sequential_engine
                    .answer(&q.peer, &q.query, &q.free_vars)
                    .unwrap()
                    .tuples
            })
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn batch_parallel_metrics_do_not_under_count() {
        // Regression: with plain u64 counters behind the cache lock, the
        // read-path increments raced and dropped hits. Warm one entry per
        // peer, hammer the warm cache with a large parallel batch and check
        // the atomic counters account for every single query.
        let engine = QueryEngine::builder(example1_system())
            .strategy(Strategy::Asp)
            .workers(8)
            .build();
        let (query, fv) = r1_query();
        let q3 = Formula::atom("R3", vec!["X", "Y"]);
        let warmup = vec![
            Query::new(PeerId::new("P1"), query.clone(), fv.clone()),
            Query::new(PeerId::new("P3"), q3.clone(), fv.clone()),
        ];
        for result in engine.answer_batch(&warmup) {
            let _ = result.unwrap();
        }
        let warm_base = engine.metrics();
        let rounds = 64usize;
        let batch: Vec<Query> = (0..rounds)
            .flat_map(|_| {
                [
                    Query::new(PeerId::new("P1"), query.clone(), fv.clone()),
                    Query::new(PeerId::new("P3"), q3.clone(), fv.clone()),
                ]
            })
            .collect();
        let results = engine.answer_batch(&batch);
        assert!(results.iter().all(|r| r.is_ok()));
        let metrics = engine.metrics();
        assert_eq!(
            metrics.hits - warm_base.hits,
            (rounds * 2) as u64,
            "every warm query must be counted as a hit"
        );
        assert_eq!(metrics.misses, warm_base.misses);
    }

    /// Example 1 plus an unrelated peer whose facts only bloat the full
    /// grounding — the relevance slice of any example-1 query drops them.
    fn example1_with_bystander() -> P2PSystem {
        let mut sys = example1_system();
        sys.add_peer("P4").unwrap();
        let p4 = PeerId::new("P4");
        sys.add_relation(&p4, RelationSchema::new("R4", &["x", "y"]))
            .unwrap();
        for i in 0..20 {
            sys.insert(&p4, "R4", Tuple::strs([&format!("k{i}"), "v"]))
                .unwrap();
        }
        sys
    }

    #[test]
    fn relevance_pruning_grounds_strictly_fewer_rules() {
        let p1 = PeerId::new("P1");
        let (query, fv) = r1_query();
        let pruned_engine = QueryEngine::builder(example1_with_bystander())
            .strategy(Strategy::Asp)
            .build();
        let full_engine = QueryEngine::builder(example1_with_bystander())
            .strategy(Strategy::Asp)
            .relevance_pruning(false)
            .build();
        let pruned = pruned_engine.answer(&p1, &query, &fv).unwrap();
        let full = full_engine.answer(&p1, &query, &fv).unwrap();
        assert_eq!(pruned.tuples, full.tuples);
        assert!(full.stats.grounded_rules > 0);
        assert!(
            pruned.stats.grounded_rules < full.stats.grounded_rules,
            "pruned {} !< full {}",
            pruned.stats.grounded_rules,
            full.stats.grounded_rules
        );
        assert!(pruned.stats.grounded_atoms < full.stats.grounded_atoms);
    }

    #[test]
    fn unexploitable_bindings_share_one_artifact() {
        // P1's solution predicate is read by final-check constraints, so
        // the binding of R1(a, Y) cannot restrict the grounding: the bound
        // and unbound queries resolve to the same canonical slice
        // fingerprint and share one grounded artifact (no per-constant
        // re-grounding).
        let engine = example1_engine(Strategy::Asp);
        let p1 = PeerId::new("P1");
        let (unbound, fv) = r1_query();
        let bound_atom = Formula::atom_terms(
            "R1",
            vec![
                relalg::query::Term::cnst(relalg::Value::str("a")),
                relalg::query::Term::var("Y"),
            ],
        );
        let all = engine.answer(&p1, &unbound, &fv).unwrap();
        let only_a = engine.answer(&p1, &bound_atom, &vars(&["Y"])).unwrap();
        assert!(only_a.stats.cache_hit, "same slice, different shape");
        assert_eq!(engine.cached_artifact_count(), 1);
        // The bound query's answers are the unbound answers restricted to a.
        let expected: BTreeSet<Tuple> = all
            .tuples
            .iter()
            .filter(|t| t.get(0).unwrap().to_string() == "a")
            .map(|t| Tuple::new(vec![t.get(1).unwrap().clone()]))
            .collect();
        assert_eq!(only_a.tuples, expected);
        // A comparison-bound variant (constant outside the atom) shares the
        // unbound shape key outright.
        let via_compare = engine
            .answer(
                &p1,
                &Formula::and(vec![
                    Formula::atom("R1", vec!["X", "Y"]),
                    Formula::eq(
                        relalg::query::Term::var("X"),
                        relalg::query::Term::cnst(relalg::Value::str("a")),
                    ),
                ]),
                &fv,
            )
            .unwrap();
        assert!(via_compare.stats.cache_hit);
        assert_eq!(engine.cached_artifact_count(), 1);
    }

    #[test]
    fn restrictable_bindings_get_their_own_smaller_slice() {
        // P3 has no DECs or ICs of its own, so R3's solution predicate is
        // read by nothing: the binding of R3(a, Y) applies, yielding a
        // distinct, strictly smaller grounded slice.
        let engine = example1_engine(Strategy::Asp);
        let p3 = PeerId::new("P3");
        let q3 = Formula::atom("R3", vec!["X", "Y"]);
        let bound = Formula::atom_terms(
            "R3",
            vec![
                relalg::query::Term::cnst(relalg::Value::str("a")),
                relalg::query::Term::var("Y"),
            ],
        );
        let all = engine.answer(&p3, &q3, &vars(&["X", "Y"])).unwrap();
        let only_a = engine.answer(&p3, &bound, &vars(&["Y"])).unwrap();
        assert!(!only_a.stats.cache_hit, "restricted slice is its own entry");
        assert_eq!(engine.cached_artifact_count(), 2);
        assert!(
            only_a.stats.grounded_rules < all.stats.grounded_rules,
            "bound {} !< unbound {}",
            only_a.stats.grounded_rules,
            all.stats.grounded_rules
        );
        let expected: BTreeSet<Tuple> = all
            .tuples
            .iter()
            .filter(|t| t.get(0).unwrap().to_string() == "a")
            .map(|t| Tuple::new(vec![t.get(1).unwrap().clone()]))
            .collect();
        assert_eq!(only_a.tuples, expected);
        // Repeats of the bound shape hit through the alias.
        let warm = engine.answer(&p3, &bound, &vars(&["Y"])).unwrap();
        assert!(warm.stats.cache_hit);
    }

    #[test]
    fn pruning_disabled_reproduces_one_artifact_per_peer() {
        let engine = QueryEngine::builder(example1_system())
            .strategy(Strategy::Asp)
            .relevance_pruning(false)
            .build();
        assert!(!engine.relevance_pruning());
        let p1 = PeerId::new("P1");
        let (query, fv) = r1_query();
        let _ = engine.answer(&p1, &query, &fv).unwrap();
        let bound_atom = Formula::atom_terms(
            "R1",
            vec![
                relalg::query::Term::cnst(relalg::Value::str("a")),
                relalg::query::Term::var("Y"),
            ],
        );
        let warm = engine.answer(&p1, &bound_atom, &vars(&["Y"])).unwrap();
        assert!(warm.stats.cache_hit, "full grounding is shared per peer");
        assert_eq!(engine.cached_artifact_count(), 1);
    }

    #[test]
    fn transitive_strategy_sees_chained_imports() {
        use constraints::builders::full_inclusion;
        let mut sys = P2PSystem::new();
        for p in ["A", "B", "C"] {
            sys.add_peer(p).unwrap();
        }
        let a = PeerId::new("A");
        let b = PeerId::new("B");
        let c = PeerId::new("C");
        for (peer, rel) in [(&a, "RA"), (&b, "RB"), (&c, "RC")] {
            sys.add_relation(peer, RelationSchema::new(rel, &["x"]))
                .unwrap();
        }
        sys.insert(&c, "RC", Tuple::strs(["v"])).unwrap();
        sys.add_dec(&a, &b, full_inclusion("dab", "RB", "RA", 1).unwrap())
            .unwrap();
        sys.add_dec(&b, &c, full_inclusion("dbc", "RC", "RB", 1).unwrap())
            .unwrap();
        sys.set_trust(&a, TrustLevel::Less, &b).unwrap();
        sys.set_trust(&b, TrustLevel::Less, &c).unwrap();

        let engine = QueryEngine::new(sys);
        let query = Formula::atom("RA", vec!["X"]);
        let direct = engine
            .answer_with(Strategy::Asp, &a, &query, &vars(&["X"]))
            .unwrap();
        assert!(direct.is_empty());
        let transitive = engine
            .answer_with(Strategy::TransitiveAsp, &a, &query, &vars(&["X"]))
            .unwrap();
        assert_eq!(transitive.tuples, BTreeSet::from([Tuple::strs(["v"])]));
    }
}

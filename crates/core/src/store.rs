//! Peer-state access behind a transport-shaped API: the [`PeerStore`] trait.
//!
//! The paper's model is a network of *autonomous* peers, but historically the
//! whole reproduction poked at one in-process [`P2PSystem`] through direct
//! struct access. `PeerStore` is the redesigned boundary: the engine, the
//! session layer and the tooling reach peer state only through this trait, so
//! an in-process system and a sharded multi-worker runtime (the `pdes-store`
//! crate's `ShardedStore`) are interchangeable behind one API.
//!
//! The trait splits peer state along the replication boundary of a
//! distributed deployment:
//!
//! * **Topology** — peers, schemas, DECs, the trust relation and local ICs —
//!   is cheap, slow-changing metadata that every node replicates. It is
//!   served locally by [`PeerStore::topology`] (a topology-only
//!   [`P2PSystem`], instances empty), and every closure/ownership/trust
//!   question is answered from that replica without a round-trip.
//! * **Instances** — the per-peer data — live with their owning store (or
//!   shard) and are fetched explicitly: [`PeerStore::instance_of`] /
//!   [`PeerStore::instances`] for reads, [`PeerStore::snapshot`] for a full
//!   materialization, [`PeerStore::apply_delta`] (and the
//!   [`PeerStore::insert`] / [`PeerStore::delete`] conveniences) for writes.
//!
//! Writes return *version stamps*: every peer carries a monotonically
//! increasing `u64` bumped by each effective mutation, and the store is the
//! single authority for it. Cache layers (the engine's memo cache) key their
//! artifacts by these stamps instead of maintaining private counters.

use crate::system::{P2PSystem, PeerId};
use crate::Result;
use relalg::{Database, Delta, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Per-peer version stamps, as returned by [`PeerStore::versions`].
pub type VersionMap = BTreeMap<PeerId, u64>;

/// The single way engine, session and tooling reach peer state.
///
/// [`InProcessStore`] is the canonical single-process implementation;
/// `pdes-store`'s `ShardedStore` serves the same API over an in-process
/// loopback transport with peers partitioned across worker shards. Apart
/// from latency and the transport-failure error surface
/// ([`CoreError::Transport`](crate::error::CoreError::Transport)),
/// implementations must be observationally
/// equivalent: same answers, same version stamps for the same mutation
/// sequence.
pub trait PeerStore: Send + Sync {
    /// The topology-only replica: every peer with its schema, DECs, trust
    /// and local ICs, but *empty* instances. Served locally (no transport
    /// round-trip); use it for closure queries
    /// ([`P2PSystem::dependencies_of`]), ownership lookups, schema checks
    /// and analysis.
    fn topology(&self) -> &P2PSystem;

    /// Fetch one peer's current instance.
    fn instance_of(&self, peer: &PeerId) -> Result<Database>;

    /// Fetch the instances of a set of peers. The default implementation
    /// loops over [`PeerStore::instance_of`]; transports override it to
    /// batch per destination.
    fn instances(&self, peers: &BTreeSet<PeerId>) -> Result<BTreeMap<PeerId, Database>> {
        peers
            .iter()
            .map(|p| Ok((p.clone(), self.instance_of(p)?)))
            .collect()
    }

    /// Materialize the full system: the topology replica with every peer's
    /// current instance installed. This is the expensive "fetch everything"
    /// read — cold naive preparations and oracle comparisons use it; the
    /// engine's warm paths never do.
    fn snapshot(&self) -> Result<P2PSystem> {
        let mut system = self.topology().clone();
        let all: BTreeSet<PeerId> = system.peer_ids().cloned().collect();
        for (peer, instance) in self.instances(&all)? {
            system.set_instance(&peer, instance)?;
        }
        Ok(system)
    }

    /// Apply a validated update delta to one peer's instance and bump its
    /// version. Validation happens before any change
    /// ([`P2PSystem::apply_delta`]); a failed call leaves the store
    /// untouched. Returns the peer's new version stamp.
    fn apply_delta(&self, peer: &PeerId, delta: &Delta) -> Result<u64>;

    /// Insert one tuple into a peer's relation, bumping the peer's version.
    /// Returns the new version stamp.
    fn insert(&self, peer: &PeerId, relation: &str, tuple: Tuple) -> Result<u64>;

    /// Remove one tuple from a peer's relation. Returns whether the tuple
    /// was present; the peer's version is bumped only when it was (a no-op
    /// delete leaves every cache stamp valid). Takes the tuple by reference
    /// — the unified mutation signature shared with [`P2PSystem::delete`].
    fn delete(&self, peer: &PeerId, relation: &str, tuple: &Tuple) -> Result<bool>;

    /// The current version stamp of one peer (0 until its first mutation).
    fn version_of(&self, peer: &PeerId) -> Result<u64>;

    /// The current version stamps of every peer.
    fn versions(&self) -> Result<VersionMap>;
}

/// Mutable store state: the authoritative system plus per-peer versions.
struct StoreState {
    system: P2PSystem,
    versions: VersionMap,
}

/// The canonical in-process [`PeerStore`]: the authoritative [`P2PSystem`]
/// behind an `RwLock`, plus per-peer version counters. This is what
/// `QueryEngine::builder(system)` wraps a plain system into.
pub struct InProcessStore {
    /// Immutable topology replica (instances stripped), shared by reference.
    topology: P2PSystem,
    state: RwLock<StoreState>,
}

impl InProcessStore {
    /// Take ownership of a system and serve it through the store API.
    pub fn new(system: P2PSystem) -> Self {
        InProcessStore {
            topology: system.topology_only(),
            state: RwLock::new(StoreState {
                system,
                versions: VersionMap::new(),
            }),
        }
    }

    /// Read access, recovering from lock poisoning: every mutation validates
    /// before applying, so the state is consistent even after a panicked
    /// writer.
    fn read(&self) -> RwLockReadGuard<'_, StoreState> {
        self.state
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Write access; see [`InProcessStore::read`] for the poisoning
    /// rationale.
    fn write(&self) -> RwLockWriteGuard<'_, StoreState> {
        self.state
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl From<P2PSystem> for InProcessStore {
    fn from(system: P2PSystem) -> Self {
        InProcessStore::new(system)
    }
}

/// Bump and return a peer's version counter.
fn bump(versions: &mut VersionMap, peer: &PeerId) -> u64 {
    let v = versions.entry(peer.clone()).or_insert(0);
    *v += 1;
    *v
}

impl PeerStore for InProcessStore {
    fn topology(&self) -> &P2PSystem {
        &self.topology
    }

    fn instance_of(&self, peer: &PeerId) -> Result<Database> {
        Ok(self.read().system.peer(peer)?.instance.clone())
    }

    fn instances(&self, peers: &BTreeSet<PeerId>) -> Result<BTreeMap<PeerId, Database>> {
        let state = self.read();
        peers
            .iter()
            .map(|p| Ok((p.clone(), state.system.peer(p)?.instance.clone())))
            .collect()
    }

    fn snapshot(&self) -> Result<P2PSystem> {
        Ok(self.read().system.clone())
    }

    fn apply_delta(&self, peer: &PeerId, delta: &Delta) -> Result<u64> {
        let mut state = self.write();
        state.system.apply_delta(peer, delta)?;
        Ok(bump(&mut state.versions, peer))
    }

    fn insert(&self, peer: &PeerId, relation: &str, tuple: Tuple) -> Result<u64> {
        let mut state = self.write();
        state.system.insert(peer, relation, tuple)?;
        Ok(bump(&mut state.versions, peer))
    }

    fn delete(&self, peer: &PeerId, relation: &str, tuple: &Tuple) -> Result<bool> {
        let mut state = self.write();
        let present = state.system.delete(peer, relation, tuple)?;
        if present {
            bump(&mut state.versions, peer);
        }
        Ok(present)
    }

    fn version_of(&self, peer: &PeerId) -> Result<u64> {
        let state = self.read();
        // An unknown peer is an error, not version 0.
        let _ = state.system.peer(peer)?;
        Ok(state.versions.get(peer).copied().unwrap_or(0))
    }

    fn versions(&self) -> Result<VersionMap> {
        let state = self.read();
        Ok(state
            .system
            .peer_ids()
            .map(|p| (p.clone(), state.versions.get(p).copied().unwrap_or(0)))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::example1_system;
    use relalg::database::GroundAtom;

    #[test]
    fn topology_is_instance_free_but_schema_complete() {
        let store = InProcessStore::new(example1_system());
        let topology = store.topology();
        assert_eq!(topology.peer_count(), 3);
        assert_eq!(topology.decs().len(), 2);
        for peer in topology.peers() {
            assert_eq!(peer.instance.tuple_count(), 0, "peer {}", peer.id);
            // Declared relations survive (empty), so evaluation over the
            // replica fails on unknown relations, not on missing ones.
            for name in peer.schema.relation_names() {
                assert!(peer.instance.contains_relation(name));
            }
        }
        // The authoritative data is still served through the store.
        let p1 = PeerId::new("P1");
        assert_eq!(store.instance_of(&p1).unwrap().tuple_count(), 2);
    }

    #[test]
    fn snapshot_round_trips_the_system() {
        let system = example1_system();
        let store = InProcessStore::new(system.clone());
        assert_eq!(store.snapshot().unwrap(), system);
        // The default (trait-level) snapshot agrees with the override.
        let mut assembled = store.topology().clone();
        let all: BTreeSet<PeerId> = assembled.peer_ids().cloned().collect();
        for (peer, instance) in store.instances(&all).unwrap() {
            assembled.set_instance(&peer, instance).unwrap();
        }
        assert_eq!(assembled, system);
    }

    #[test]
    fn mutations_stamp_versions() {
        let store = InProcessStore::new(example1_system());
        let p1 = PeerId::new("P1");
        let p2 = PeerId::new("P2");
        assert_eq!(store.version_of(&p1).unwrap(), 0);
        let v = store
            .insert(&p1, "R1", Tuple::strs(["fresh", "row"]))
            .unwrap();
        assert_eq!(v, 1);
        let delta = Delta::from_changes([GroundAtom::new("R1", Tuple::strs(["x", "y"]))], []);
        assert_eq!(store.apply_delta(&p1, &delta).unwrap(), 2);
        // Effective deletes bump; no-op deletes do not.
        assert!(store.delete(&p1, "R1", &Tuple::strs(["x", "y"])).unwrap());
        assert_eq!(store.version_of(&p1).unwrap(), 3);
        assert!(!store.delete(&p1, "R1", &Tuple::strs(["x", "y"])).unwrap());
        assert_eq!(store.version_of(&p1).unwrap(), 3);
        // Other peers are untouched.
        assert_eq!(store.version_of(&p2).unwrap(), 0);
        let versions = store.versions().unwrap();
        assert_eq!(versions[&p1], 3);
        assert_eq!(versions[&p2], 0);
    }

    #[test]
    fn failed_mutations_leave_state_and_versions_alone() {
        let store = InProcessStore::new(example1_system());
        let p1 = PeerId::new("P1");
        // Foreign relation: validated before any change.
        let bad = Delta::from_changes([GroundAtom::new("R2", Tuple::strs(["a", "b"]))], []);
        assert!(store.apply_delta(&p1, &bad).is_err());
        assert_eq!(store.version_of(&p1).unwrap(), 0);
        assert!(store.insert(&p1, "Nope", Tuple::strs(["v"])).is_err());
        assert!(store.delete(&p1, "Nope", &Tuple::strs(["v"])).is_err());
        assert_eq!(store.version_of(&p1).unwrap(), 0);
        assert!(store.version_of(&PeerId::new("ZZ")).is_err());
        assert!(store.instance_of(&PeerId::new("ZZ")).is_err());
    }
}

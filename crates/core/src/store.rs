//! Peer-state access behind a transport-shaped API: the [`PeerStore`] trait.
//!
//! The paper's model is a network of *autonomous* peers, but historically the
//! whole reproduction poked at one in-process [`P2PSystem`] through direct
//! struct access. `PeerStore` is the redesigned boundary: the engine, the
//! session layer and the tooling reach peer state only through this trait, so
//! an in-process system and a sharded multi-worker runtime (the `pdes-store`
//! crate's `ShardedStore`) are interchangeable behind one API.
//!
//! The trait splits peer state along the replication boundary of a
//! distributed deployment:
//!
//! * **Topology** — peers, schemas, DECs, the trust relation and local ICs —
//!   is cheap, slow-changing metadata that every node replicates. It is
//!   served locally by [`PeerStore::topology`] (a topology-only
//!   [`P2PSystem`], instances empty), and every closure/ownership/trust
//!   question is answered from that replica without a round-trip.
//! * **Instances** — the per-peer data — live with their owning store (or
//!   shard) and are fetched explicitly: [`PeerStore::instance_of`] /
//!   [`PeerStore::instances`] for reads, [`PeerStore::snapshot`] for a full
//!   materialization, [`PeerStore::apply_delta`] (and the
//!   [`PeerStore::insert`] / [`PeerStore::delete`] conveniences) for writes.
//!
//! Writes return *version stamps*: every peer carries a monotonically
//! increasing `u64` bumped by each effective mutation, and the store is the
//! single authority for it. Cache layers (the engine's memo cache) key their
//! artifacts by these stamps instead of maintaining private counters.
//!
//! # Epochs and snapshot isolation
//!
//! Stores publish their state as a sequence of immutable **epochs**. A
//! reader calls [`PeerStore::pin`] and receives a [`Snapshot`] — a cheap,
//! cloneable handle on one epoch whose relation pages are `Arc`-shared with
//! the store. Writers build the successor epoch *outside* any lock (copying
//! only the relation pages the delta touches — see
//! [`Database::apply_changes_cow`]) and publish it with a single pointer
//! swap, so a pinned reader never blocks on a concurrent commit and never
//! observes a torn write. [`MvccStats`] counts pins, epoch publications and
//! copied pages.

use crate::error::CoreError;
use crate::system::{P2PSystem, PeerId};
use crate::Result;
use relalg::{Database, Delta, SymbolTable, Tuple};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Per-peer version stamps, as returned by [`PeerStore::versions`].
pub type VersionMap = BTreeMap<PeerId, u64>;

/// MVCC observability counters of a store: how many snapshots were pinned,
/// how many epochs were published, and how many shared relation pages the
/// copy-on-write commits had to copy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MvccStats {
    /// Snapshots handed out by [`PeerStore::pin`].
    pub pins: u64,
    /// Epochs published by effective mutations.
    pub publishes: u64,
    /// Relation pages copied because they were shared with a live epoch.
    pub cow_pages: u64,
}

/// One published epoch: an immutable map from peers to their (page-shared)
/// instances, plus the version stamps as of this epoch.
#[derive(Debug)]
struct EpochState {
    /// Monotone epoch number: 0 for the initial state, +1 per publication.
    epoch: u64,
    /// Per-peer instances. The `Arc` is per *peer*; pages inside each
    /// [`Database`] are additionally shared per *relation*.
    instances: BTreeMap<PeerId, Arc<Database>>,
    /// Version stamps as of this epoch.
    versions: VersionMap,
}

/// An immutable, cheaply-cloneable handle on one published epoch.
///
/// A `Snapshot` is what [`PeerStore::pin`] returns: all reads against it are
/// lock-free and stable — no concurrent commit can change what a pinned
/// snapshot observes, because commits publish *new* epochs instead of
/// mutating the pinned one. Cloning a snapshot is two `Arc` bumps.
///
/// `Snapshot` itself implements [`PeerStore`] (mutations fail with
/// [`CoreError::Unsupported`]), so anything that answers queries through a
/// store — including a whole [`QueryEngine`](crate::engine::QueryEngine) —
/// can be pointed at a frozen epoch.
#[derive(Debug, Clone)]
pub struct Snapshot {
    topology: Arc<P2PSystem>,
    state: Arc<EpochState>,
    /// The store's symbol table, shared so ids minted against one epoch stay
    /// valid against every other (the table is append-only).
    symbols: Arc<SymbolTable>,
}

impl Snapshot {
    /// Build a snapshot from a materialized system, version stamps and an
    /// epoch number. Used by stores publishing their first epoch and by the
    /// session log's historical replay (`snapshot_at`).
    pub fn from_system(system: &P2PSystem, mut versions: VersionMap, epoch: u64) -> Snapshot {
        // Normalize: every peer has a stamp (0 until its first mutation), so
        // version maps compare bit-identically across store implementations.
        for peer in system.peer_ids() {
            versions.entry(peer.clone()).or_insert(0);
        }
        let instances = system
            .peers()
            .map(|p| (p.id.clone(), Arc::new(p.instance.clone())))
            .collect();
        Snapshot {
            topology: Arc::new(system.topology_only()),
            state: Arc::new(EpochState {
                epoch,
                instances,
                versions,
            }),
            symbols: Arc::new(intern_system(system)),
        }
    }

    /// The epoch number this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.state.epoch
    }

    /// The topology replica (instances empty) backing this snapshot.
    pub fn topology(&self) -> &P2PSystem {
        &self.topology
    }

    /// The version stamps as of this epoch.
    pub fn versions(&self) -> &VersionMap {
        &self.state.versions
    }

    /// One peer's version stamp as of this epoch (0 until its first
    /// mutation; unknown peers error).
    pub fn version_of(&self, peer: &PeerId) -> Result<u64> {
        let _ = self.topology.peer(peer)?;
        Ok(self.state.versions.get(peer).copied().unwrap_or(0))
    }

    /// One peer's instance as of this epoch. The returned [`Database`] is a
    /// shallow, page-shared copy — no tuple data moves.
    pub fn instance_of(&self, peer: &PeerId) -> Result<Database> {
        self.state
            .instances
            .get(peer)
            .map(|db| db.as_ref().clone())
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))
    }

    /// The symbol table shared with the originating store (see
    /// [`PeerStore::symbols`]).
    pub fn symbols(&self) -> Arc<SymbolTable> {
        Arc::clone(&self.symbols)
    }

    /// Materialize the full system as of this epoch: the topology replica
    /// with every peer's pinned instance installed.
    pub fn system(&self) -> Result<P2PSystem> {
        let mut system = self.topology.as_ref().clone();
        for (peer, instance) in &self.state.instances {
            system.set_instance(peer, instance.as_ref().clone())?;
        }
        Ok(system)
    }
}

impl PeerStore for Snapshot {
    fn topology(&self) -> &P2PSystem {
        Snapshot::topology(self)
    }

    fn instance_of(&self, peer: &PeerId) -> Result<Database> {
        Snapshot::instance_of(self, peer)
    }

    fn snapshot(&self) -> Result<P2PSystem> {
        self.system()
    }

    fn pin(&self) -> Result<Snapshot> {
        Ok(self.clone())
    }

    fn apply_delta(&self, _peer: &PeerId, _delta: &Delta) -> Result<u64> {
        Err(CoreError::Unsupported(
            "a pinned snapshot is immutable; commit through the live store".into(),
        ))
    }

    fn insert(&self, _peer: &PeerId, _relation: &str, _tuple: Tuple) -> Result<u64> {
        Err(CoreError::Unsupported(
            "a pinned snapshot is immutable; commit through the live store".into(),
        ))
    }

    fn delete(&self, _peer: &PeerId, _relation: &str, _tuple: &Tuple) -> Result<bool> {
        Err(CoreError::Unsupported(
            "a pinned snapshot is immutable; commit through the live store".into(),
        ))
    }

    fn version_of(&self, peer: &PeerId) -> Result<u64> {
        Snapshot::version_of(self, peer)
    }

    fn versions(&self) -> Result<VersionMap> {
        Ok(self.state.versions.clone())
    }

    fn symbols(&self) -> Arc<SymbolTable> {
        Snapshot::symbols(self)
    }
}

/// Build a symbol table covering everything a system mentions: every
/// relation and attribute name of every peer's schema, and every constant of
/// every instance. Called once at store construction ([`InProcessStore::new`]
/// and [`Snapshot::from_system`]); mutations extend the table incrementally.
fn intern_system(system: &P2PSystem) -> SymbolTable {
    let table = SymbolTable::new();
    for peer in system.peers() {
        table.intern_name(&peer.id.0);
        for schema in peer.schema.relations() {
            table.intern_name(schema.name());
            for attr in schema.attributes() {
                table.intern_name(attr);
            }
        }
        table.intern_database(&peer.instance);
    }
    table
}

/// Intern the constants a delta introduces (insertions only: deletions
/// cannot mention values the table has not already seen, and interning is
/// idempotent anyway).
fn intern_delta(symbols: &SymbolTable, delta: &Delta) {
    for atom in &delta.insertions {
        symbols.intern_name(&atom.relation);
        for value in atom.tuple.iter() {
            symbols.intern(value);
        }
    }
}

/// The single way engine, session and tooling reach peer state.
///
/// [`InProcessStore`] is the canonical single-process implementation;
/// `pdes-store`'s `ShardedStore` serves the same API over an in-process
/// loopback transport with peers partitioned across worker shards. Apart
/// from latency and the transport-failure error surface
/// ([`CoreError::Transport`]),
/// implementations must be observationally
/// equivalent: same answers, same version stamps for the same mutation
/// sequence.
pub trait PeerStore: Send + Sync {
    /// The topology-only replica: every peer with its schema, DECs, trust
    /// and local ICs, but *empty* instances. Served locally (no transport
    /// round-trip); use it for closure queries
    /// ([`P2PSystem::dependencies_of`]), ownership lookups, schema checks
    /// and analysis.
    fn topology(&self) -> &P2PSystem;

    /// Fetch one peer's current instance.
    fn instance_of(&self, peer: &PeerId) -> Result<Database>;

    /// Fetch the instances of a set of peers. The default implementation
    /// loops over [`PeerStore::instance_of`]; transports override it to
    /// batch per destination.
    fn instances(&self, peers: &BTreeSet<PeerId>) -> Result<BTreeMap<PeerId, Database>> {
        peers
            .iter()
            .map(|p| Ok((p.clone(), self.instance_of(p)?)))
            .collect()
    }

    /// Materialize the full system: the topology replica with every peer's
    /// current instance installed. This is the expensive "fetch everything"
    /// read — cold naive preparations and oracle comparisons use it; the
    /// engine's warm paths never do.
    fn snapshot(&self) -> Result<P2PSystem> {
        let mut system = self.topology().clone();
        let all: BTreeSet<PeerId> = system.peer_ids().cloned().collect();
        for (peer, instance) in self.instances(&all)? {
            system.set_instance(&peer, instance)?;
        }
        Ok(system)
    }

    /// Apply a validated update delta to one peer's instance and bump its
    /// version. Validation happens before any change
    /// ([`P2PSystem::apply_delta`]); a failed call leaves the store
    /// untouched. Returns the peer's new version stamp.
    fn apply_delta(&self, peer: &PeerId, delta: &Delta) -> Result<u64>;

    /// Insert one tuple into a peer's relation, bumping the peer's version.
    /// Returns the new version stamp.
    fn insert(&self, peer: &PeerId, relation: &str, tuple: Tuple) -> Result<u64>;

    /// Remove one tuple from a peer's relation. Returns whether the tuple
    /// was present; the peer's version is bumped only when it was (a no-op
    /// delete leaves every cache stamp valid). Takes the tuple by reference
    /// — the unified mutation signature shared with [`P2PSystem::delete`].
    fn delete(&self, peer: &PeerId, relation: &str, tuple: &Tuple) -> Result<bool>;

    /// The current version stamp of one peer (0 until its first mutation).
    fn version_of(&self, peer: &PeerId) -> Result<u64>;

    /// The current version stamps of every peer.
    fn versions(&self) -> Result<VersionMap>;

    /// Pin the current epoch: an immutable [`Snapshot`] whose reads are
    /// lock-free, stable under concurrent commits, and consistent across
    /// peers (no torn multi-peer reads). Pinning must be cheap — a handle on
    /// already-published state, never a data copy — and must never wait for
    /// an in-flight commit to finish.
    ///
    /// ```
    /// use pdes_core::store::{InProcessStore, PeerStore};
    /// use pdes_core::system::{example1_system, PeerId};
    /// use relalg::Tuple;
    ///
    /// let store = InProcessStore::new(example1_system());
    /// let p1 = PeerId::new("P1");
    /// let snapshot = store.pin().unwrap();
    /// let before = snapshot.instance_of(&p1).unwrap();
    ///
    /// // Commits after the pin do not disturb the snapshot's reads.
    /// store.insert(&p1, "R1", Tuple::strs(["new", "row"])).unwrap();
    /// assert_eq!(snapshot.instance_of(&p1).unwrap(), before);
    /// assert_ne!(store.pin().unwrap().instance_of(&p1).unwrap(), before);
    /// ```
    fn pin(&self) -> Result<Snapshot>;

    /// MVCC observability counters. The default reports zeros for stores
    /// that predate epoch publication.
    fn mvcc_stats(&self) -> MvccStats {
        MvccStats::default()
    }

    /// The store's [`SymbolTable`]: constants and relation/attribute names
    /// interned to dense `u32` ids at store construction and extended
    /// (append-only) by every committed insertion. Snapshots pinned from the
    /// store share the same table, so symbol ids are stable across epochs
    /// and cached columnar artifacts never need re-interning.
    ///
    /// *Added in the interned data plane redesign (0.x breaking change for
    /// `PeerStore` implementors — see the README migration guide).*
    fn symbols(&self) -> Arc<SymbolTable>;
}

/// Shared atomic MVCC counters; snapshot with [`MvccCounters::stats`].
#[derive(Debug, Default)]
pub(crate) struct MvccCounters {
    pins: AtomicU64,
    publishes: AtomicU64,
    cow_pages: AtomicU64,
}

impl MvccCounters {
    pub(crate) fn count_pin(&self) {
        self.pins.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_publish(&self, cow_pages: u64) {
        self.publishes.fetch_add(1, Ordering::Relaxed);
        self.cow_pages.fetch_add(cow_pages, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> MvccStats {
        MvccStats {
            pins: self.pins.load(Ordering::Relaxed),
            publishes: self.publishes.load(Ordering::Relaxed),
            cow_pages: self.cow_pages.load(Ordering::Relaxed),
        }
    }
}

/// The canonical in-process [`PeerStore`]: an epoch-publishing MVCC store.
/// The current epoch lives behind an `RwLock<Arc<…>>` held only for the
/// pointer read/swap; writers serialize on a commit mutex and build the
/// successor epoch outside both locks, so readers (and pinners) never wait
/// for a commit in flight. This is what `QueryEngine::builder(system)`
/// wraps a plain system into.
pub struct InProcessStore {
    /// Immutable topology replica (instances stripped), shared with every
    /// snapshot this store pins.
    topology: Arc<P2PSystem>,
    /// The published epoch. Lock hold times are a pointer clone (readers) or
    /// a pointer swap (the committer) — never the commit work itself.
    current: RwLock<Arc<EpochState>>,
    /// Serializes writers. Readers never take it.
    commit: Mutex<()>,
    counters: MvccCounters,
    /// Append-only intern table fronting the data plane; built at
    /// construction, extended under the writer lock by effective insertions.
    symbols: Arc<SymbolTable>,
}

impl InProcessStore {
    /// Take ownership of a system and serve it through the store API,
    /// publishing it as epoch 0.
    pub fn new(system: P2PSystem) -> Self {
        let versions: VersionMap = system.peer_ids().map(|p| (p.clone(), 0)).collect();
        let instances = system
            .peers()
            .map(|p| (p.id.clone(), Arc::new(p.instance.clone())))
            .collect();
        let symbols = Arc::new(intern_system(&system));
        InProcessStore {
            topology: Arc::new(system.topology_only()),
            current: RwLock::new(Arc::new(EpochState {
                epoch: 0,
                instances,
                versions,
            })),
            commit: Mutex::new(()),
            counters: MvccCounters::default(),
            symbols,
        }
    }

    /// The current epoch pointer. Recovers from poisoning: the epoch behind
    /// the lock is immutable, so a panicked holder cannot have corrupted it.
    fn current(&self) -> Arc<EpochState> {
        Arc::clone(
            &self
                .current
                .read()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }

    /// The writer lock; see [`InProcessStore::current`] for the poisoning
    /// rationale.
    fn writer(&self) -> MutexGuard<'_, ()> {
        self.commit
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Publish `next` as the new current epoch (one pointer swap).
    fn publish(&self, next: EpochState, cow_pages: u64) {
        let mut slot = self
            .current
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *slot = Arc::new(next);
        drop(slot);
        self.counters.count_publish(cow_pages);
    }

    /// Begin the successor of the current epoch: shallow-clone the instance
    /// map (per-peer `Arc` bumps) and the version map.
    fn successor(&self) -> (Arc<EpochState>, BTreeMap<PeerId, Arc<Database>>, VersionMap) {
        let base = self.current();
        (
            Arc::clone(&base),
            base.instances.clone(),
            base.versions.clone(),
        )
    }
}

impl From<P2PSystem> for InProcessStore {
    fn from(system: P2PSystem) -> Self {
        InProcessStore::new(system)
    }
}

/// Bump and return a peer's version counter.
fn bump(versions: &mut VersionMap, peer: &PeerId) -> u64 {
    let v = versions.entry(peer.clone()).or_insert(0);
    *v += 1;
    *v
}

impl PeerStore for InProcessStore {
    fn topology(&self) -> &P2PSystem {
        &self.topology
    }

    fn instance_of(&self, peer: &PeerId) -> Result<Database> {
        let state = self.current();
        state
            .instances
            .get(peer)
            .map(|db| db.as_ref().clone())
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))
    }

    fn instances(&self, peers: &BTreeSet<PeerId>) -> Result<BTreeMap<PeerId, Database>> {
        let state = self.current();
        peers
            .iter()
            .map(|p| {
                state
                    .instances
                    .get(p)
                    .map(|db| (p.clone(), db.as_ref().clone()))
                    .ok_or_else(|| CoreError::UnknownPeer(p.to_string()))
            })
            .collect()
    }

    fn snapshot(&self) -> Result<P2PSystem> {
        Snapshot {
            topology: Arc::clone(&self.topology),
            state: self.current(),
            symbols: Arc::clone(&self.symbols),
        }
        .system()
    }

    fn apply_delta(&self, peer: &PeerId, delta: &Delta) -> Result<u64> {
        let _writer = self.writer();
        self.topology.validate_delta(peer, delta)?;
        let (base, mut instances, mut versions) = self.successor();
        let slot = instances
            .get_mut(peer)
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))?;
        let mut instance = slot.as_ref().clone();
        let cow = instance.apply_changes_cow(delta.insertions.iter(), delta.deletions.iter())?;
        *slot = Arc::new(instance);
        intern_delta(&self.symbols, delta);
        let version = bump(&mut versions, peer);
        self.publish(
            EpochState {
                epoch: base.epoch + 1,
                instances,
                versions,
            },
            cow as u64,
        );
        Ok(version)
    }

    fn insert(&self, peer: &PeerId, relation: &str, tuple: Tuple) -> Result<u64> {
        let _writer = self.writer();
        // Same validation as `P2PSystem::insert`: the peer must declare the
        // relation (relation-level arity errors surface from the page).
        let p = self.topology.peer(peer)?;
        if !p.schema.contains(relation) {
            return Err(CoreError::UnknownRelation {
                peer: peer.to_string(),
                relation: relation.to_string(),
            });
        }
        let (base, mut instances, mut versions) = self.successor();
        let slot = instances
            .get_mut(peer)
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))?;
        let mut instance = slot.as_ref().clone();
        let before = instance.shared_page_count();
        let interned = tuple.clone();
        instance.insert(relation, tuple)?;
        // Intern only after a successful insert, so failed mutations leave
        // the table exactly as they found it.
        for value in interned.iter() {
            self.symbols.intern(value);
        }
        let cow = before.saturating_sub(instance.shared_page_count());
        *slot = Arc::new(instance);
        let version = bump(&mut versions, peer);
        self.publish(
            EpochState {
                epoch: base.epoch + 1,
                instances,
                versions,
            },
            cow as u64,
        );
        Ok(version)
    }

    fn delete(&self, peer: &PeerId, relation: &str, tuple: &Tuple) -> Result<bool> {
        let _writer = self.writer();
        let p = self.topology.peer(peer)?;
        if !p.schema.contains(relation) {
            return Err(CoreError::UnknownRelation {
                peer: peer.to_string(),
                relation: relation.to_string(),
            });
        }
        let (base, mut instances, mut versions) = self.successor();
        let slot = instances
            .get_mut(peer)
            .ok_or_else(|| CoreError::UnknownPeer(peer.to_string()))?;
        let mut instance = slot.as_ref().clone();
        let before = instance.shared_page_count();
        let present = instance.remove(relation, tuple)?;
        if !present {
            // No effective change: no version bump, no epoch.
            return Ok(false);
        }
        let cow = before.saturating_sub(instance.shared_page_count());
        *slot = Arc::new(instance);
        bump(&mut versions, peer);
        self.publish(
            EpochState {
                epoch: base.epoch + 1,
                instances,
                versions,
            },
            cow as u64,
        );
        Ok(true)
    }

    fn version_of(&self, peer: &PeerId) -> Result<u64> {
        // An unknown peer is an error, not version 0.
        let _ = self.topology.peer(peer)?;
        Ok(self.current().versions.get(peer).copied().unwrap_or(0))
    }

    fn versions(&self) -> Result<VersionMap> {
        Ok(self.current().versions.clone())
    }

    fn pin(&self) -> Result<Snapshot> {
        self.counters.count_pin();
        Ok(Snapshot {
            topology: Arc::clone(&self.topology),
            state: self.current(),
            symbols: Arc::clone(&self.symbols),
        })
    }

    fn mvcc_stats(&self) -> MvccStats {
        self.counters.stats()
    }

    fn symbols(&self) -> Arc<SymbolTable> {
        Arc::clone(&self.symbols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::example1_system;
    use relalg::database::GroundAtom;

    #[test]
    fn topology_is_instance_free_but_schema_complete() {
        let store = InProcessStore::new(example1_system());
        let topology = store.topology();
        assert_eq!(topology.peer_count(), 3);
        assert_eq!(topology.decs().len(), 2);
        for peer in topology.peers() {
            assert_eq!(peer.instance.tuple_count(), 0, "peer {}", peer.id);
            // Declared relations survive (empty), so evaluation over the
            // replica fails on unknown relations, not on missing ones.
            for name in peer.schema.relation_names() {
                assert!(peer.instance.contains_relation(name));
            }
        }
        // The authoritative data is still served through the store.
        let p1 = PeerId::new("P1");
        assert_eq!(store.instance_of(&p1).unwrap().tuple_count(), 2);
    }

    #[test]
    fn snapshot_round_trips_the_system() {
        let system = example1_system();
        let store = InProcessStore::new(system.clone());
        assert_eq!(store.snapshot().unwrap(), system);
        // The default (trait-level) snapshot agrees with the override.
        let mut assembled = store.topology().clone();
        let all: BTreeSet<PeerId> = assembled.peer_ids().cloned().collect();
        for (peer, instance) in store.instances(&all).unwrap() {
            assembled.set_instance(&peer, instance).unwrap();
        }
        assert_eq!(assembled, system);
    }

    #[test]
    fn mutations_stamp_versions() {
        let store = InProcessStore::new(example1_system());
        let p1 = PeerId::new("P1");
        let p2 = PeerId::new("P2");
        assert_eq!(store.version_of(&p1).unwrap(), 0);
        let v = store
            .insert(&p1, "R1", Tuple::strs(["fresh", "row"]))
            .unwrap();
        assert_eq!(v, 1);
        let delta = Delta::from_changes([GroundAtom::new("R1", Tuple::strs(["x", "y"]))], []);
        assert_eq!(store.apply_delta(&p1, &delta).unwrap(), 2);
        // Effective deletes bump; no-op deletes do not.
        assert!(store.delete(&p1, "R1", &Tuple::strs(["x", "y"])).unwrap());
        assert_eq!(store.version_of(&p1).unwrap(), 3);
        assert!(!store.delete(&p1, "R1", &Tuple::strs(["x", "y"])).unwrap());
        assert_eq!(store.version_of(&p1).unwrap(), 3);
        // Other peers are untouched.
        assert_eq!(store.version_of(&p2).unwrap(), 0);
        let versions = store.versions().unwrap();
        assert_eq!(versions[&p1], 3);
        assert_eq!(versions[&p2], 0);
    }

    #[test]
    fn pinned_snapshots_are_stable_under_commits() {
        let store = InProcessStore::new(example1_system());
        let p1 = PeerId::new("P1");
        let snap = store.pin().unwrap();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.version_of(&p1).unwrap(), 0);
        let before = snap.instance_of(&p1).unwrap();

        // Mutate the live store: the pinned epoch must not move.
        store
            .insert(&p1, "R1", Tuple::strs(["fresh", "row"]))
            .unwrap();
        assert_eq!(snap.version_of(&p1).unwrap(), 0);
        assert_eq!(snap.instance_of(&p1).unwrap(), before);
        assert!(!snap
            .instance_of(&p1)
            .unwrap()
            .holds("R1", &Tuple::strs(["fresh", "row"])));

        // A fresh pin observes the commit, on a later epoch.
        let after = store.pin().unwrap();
        assert_eq!(after.epoch(), 1);
        assert_eq!(after.version_of(&p1).unwrap(), 1);
        assert!(after
            .instance_of(&p1)
            .unwrap()
            .holds("R1", &Tuple::strs(["fresh", "row"])));

        // The pinned epoch materializes the pre-commit system exactly.
        assert_eq!(snap.system().unwrap(), example1_system());
    }

    #[test]
    fn snapshots_are_immutable_peer_stores() {
        let store = InProcessStore::new(example1_system());
        let snap = store.pin().unwrap();
        let p1 = PeerId::new("P1");
        // Reads work through the PeerStore surface…
        assert_eq!(PeerStore::version_of(&snap, &p1).unwrap(), 0);
        assert_eq!(PeerStore::snapshot(&snap).unwrap(), example1_system());
        assert_eq!(snap.pin().unwrap().epoch(), snap.epoch());
        // …and every mutation is refused.
        assert!(snap.insert(&p1, "R1", Tuple::strs(["x", "y"])).is_err());
        assert!(snap.delete(&p1, "R1", &Tuple::strs(["a", "b"])).is_err());
        let delta = Delta::from_changes([GroundAtom::new("R1", Tuple::strs(["x", "y"]))], []);
        assert!(PeerStore::apply_delta(&snap, &p1, &delta).is_err());
    }

    #[test]
    fn commits_publish_epochs_and_count_cow_pages() {
        let store = InProcessStore::new(example1_system());
        let p1 = PeerId::new("P1");
        assert_eq!(store.mvcc_stats(), MvccStats::default());
        let _pin = store.pin().unwrap();
        let delta = Delta::from_changes([GroundAtom::new("R1", Tuple::strs(["x", "y"]))], []);
        store.apply_delta(&p1, &delta).unwrap();
        let stats = store.mvcc_stats();
        assert_eq!(stats.pins, 1);
        assert_eq!(stats.publishes, 1);
        // R1's page was shared with epoch 0 (held by `_pin`): one copy.
        assert_eq!(stats.cow_pages, 1);
        // A no-op delete publishes nothing.
        assert!(!store.delete(&p1, "R1", &Tuple::strs(["zz", "zz"])).unwrap());
        assert_eq!(store.mvcc_stats().publishes, 1);
        assert_eq!(store.pin().unwrap().epoch(), 1);
    }

    #[test]
    fn failed_mutations_leave_state_and_versions_alone() {
        let store = InProcessStore::new(example1_system());
        let p1 = PeerId::new("P1");
        // Foreign relation: validated before any change.
        let bad = Delta::from_changes([GroundAtom::new("R2", Tuple::strs(["a", "b"]))], []);
        assert!(store.apply_delta(&p1, &bad).is_err());
        assert_eq!(store.version_of(&p1).unwrap(), 0);
        assert!(store.insert(&p1, "Nope", Tuple::strs(["v"])).is_err());
        assert!(store.delete(&p1, "Nope", &Tuple::strs(["v"])).is_err());
        assert_eq!(store.version_of(&p1).unwrap(), 0);
        assert!(store.version_of(&PeerId::new("ZZ")).is_err());
        assert!(store.instance_of(&PeerId::new("ZZ")).is_err());
    }
}

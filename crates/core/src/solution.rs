//! Solutions for a peer (Definition 4, direct case).
//!
//! Given a peer `P` of a P2P data exchange system and the global instance
//! `r̄`, a *solution* for `P` is a global instance obtained by a two-stage
//! minimal repair:
//!
//! 1. repair `r̄` w.r.t. the DECs towards peers that `P` trusts **more** than
//!    itself, keeping every relation not owned by `P` fixed (only `P`'s data
//!    accommodates to the more-trusted data);
//! 2. repair the result w.r.t. the DECs towards peers that `P` trusts the
//!    **same** as itself — now both `P`'s and those peers' relations may
//!    change — while keeping the stage-1 DECs satisfied and the more-trusted
//!    peers' relations fixed.
//!
//! Relations of peers not mentioned in `P`'s trusted DECs never change
//! (condition (b) of Definition 4), and solutions must additionally satisfy
//! `P`'s local integrity constraints `IC(P)` (condition (a)). We enforce the
//! local ICs by adding them to the stage-2 repair — the paper's "more
//! flexible alternative" of Section 3.2, where the solutions are additionally
//! repaired w.r.t. the local ICs — and keep a final satisfaction filter as a
//! safety net (the "program denial constraint" treatment).
//!
//! The solutions are a conceptual device: the crate exposes them primarily so
//! that the peer-consistent-answer semantics ([`crate::pca`]) has a reference
//! implementation against which the rewriting- and ASP-based mechanisms are
//! validated.

use crate::error::CoreError;
use crate::system::{P2PSystem, PeerId};
use crate::Result;
use constraints::{Constraint, ConstraintChecker};
use relalg::delta::Delta;
use relalg::Database;
use repair::{RepairEngine, RepairLimits};
use std::collections::BTreeSet;

/// A solution for a peer: the repaired global instance plus its delta from
/// the original global instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// The repaired global instance.
    pub database: Database,
    /// Symmetric difference from the original global instance.
    pub delta: Delta,
}

/// Options controlling the solution search.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolutionOptions {
    /// Limits handed to the underlying repair engine.
    pub limits: Option<RepairLimits>,
}

/// Statistics of a solution enumeration (used by the benchmark harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolutionStats {
    /// Number of stage-1 repairs.
    pub stage1_repairs: usize,
    /// Number of candidate solutions before the `IC(P)` filter.
    pub stage2_candidates: usize,
    /// Total repair-search states explored across both stages.
    pub states_explored: usize,
}

/// Compute all solutions for `peer` (Definition 4).
pub fn solutions_for(
    system: &P2PSystem,
    peer: &PeerId,
    options: SolutionOptions,
) -> Result<Vec<Solution>> {
    let (solutions, _) = solutions_with_stats(system, peer, options)?;
    Ok(solutions)
}

/// Compute the solutions together with search statistics.
pub fn solutions_with_stats(
    system: &P2PSystem,
    peer: &PeerId,
    options: SolutionOptions,
) -> Result<(Vec<Solution>, SolutionStats)> {
    solutions_with_stats_recorded(system, peer, options, &pdes_obs::NullRecorder)
}

/// [`solutions_with_stats`] with both repair-search stages instrumented on
/// `recorder` (one `repair.search` span per stage-1/stage-2 enumeration,
/// plus the `repair.states` / `repair.repairs` counters).
pub fn solutions_with_stats_recorded(
    system: &P2PSystem,
    peer: &PeerId,
    options: SolutionOptions,
    recorder: &dyn pdes_obs::Recorder,
) -> Result<(Vec<Solution>, SolutionStats)> {
    let peer_data = system.peer(peer)?;
    let global = system.global_instance()?;
    let (less_decs, same_decs) = system.trusted_decs_of(peer);
    let less_constraints: Vec<Constraint> =
        less_decs.iter().map(|d| d.constraint.clone()).collect();
    let same_constraints: Vec<Constraint> =
        same_decs.iter().map(|d| d.constraint.clone()).collect();

    let all_relations: BTreeSet<String> = global.relation_names().map(str::to_string).collect();
    let own_relations = peer_data.relation_names();
    let same_relations = system.relations_same(peer);
    let limits = options.limits.unwrap_or_default();
    let domain: Vec<relalg::Value> = global.active_domain().into_iter().collect();

    let mut stats = SolutionStats::default();

    // Stage 1: only the peer's own relations may change.
    let stage1_protected: Vec<String> = all_relations
        .iter()
        .filter(|r| !own_relations.contains(*r))
        .cloned()
        .collect();
    let stage1 = RepairEngine::new(less_constraints.clone())
        .with_protected(stage1_protected)
        .with_limits(limits)
        .with_domain(domain.iter().cloned());
    let stage1_outcome = stage1.repairs_recorded(&global, recorder)?;
    stats.stage1_repairs = stage1_outcome.repairs.len();
    stats.states_explored += stage1_outcome.states_explored;

    // Stage 2: the peer's and the same-trusted peers' relations may change;
    // the stage-1 (more-trusted) DECs must stay satisfied.
    let stage2_protected: Vec<String> = all_relations
        .iter()
        .filter(|r| !own_relations.contains(*r) && !same_relations.contains(*r))
        .cloned()
        .collect();
    let mut stage2_constraints = same_constraints;
    stage2_constraints.extend(less_constraints.iter().cloned());
    stage2_constraints.extend(peer_data.local_ics.iter().cloned());
    let stage2 = RepairEngine::new(stage2_constraints)
        .with_protected(stage2_protected)
        .with_limits(limits)
        .with_domain(domain.iter().cloned());

    let mut candidates: Vec<Solution> = Vec::new();
    for r1 in &stage1_outcome.repairs {
        let outcome = stage2.repairs_recorded(&r1.database, recorder)?;
        stats.states_explored += outcome.states_explored;
        for r2 in outcome.repairs {
            stats.stage2_candidates += 1;
            let delta = Delta::between(&global, &r2.database);
            candidates.push(Solution {
                database: r2.database,
                delta,
            });
        }
    }

    // Filter by the peer's local integrity constraints (Section 3.2's denial
    // treatment) and deduplicate.
    let mut seen: BTreeSet<Vec<relalg::database::GroundAtom>> = BTreeSet::new();
    let mut solutions = Vec::new();
    for candidate in candidates {
        let checker = ConstraintChecker::new(&candidate.database);
        if !checker
            .all_satisfied(peer_data.local_ics.iter())
            .map_err(CoreError::from)?
        {
            continue;
        }
        let signature: Vec<relalg::database::GroundAtom> =
            candidate.database.ground_atoms().into_iter().collect();
        if seen.insert(signature) {
            solutions.push(candidate);
        }
    }
    Ok((solutions, stats))
}

/// Does the global instance already satisfy every trusted DEC of the peer
/// (i.e. is the original instance itself the unique solution)?
pub fn is_already_solution(system: &P2PSystem, peer: &PeerId) -> Result<bool> {
    let global = system.global_instance()?;
    let (less, same) = system.trusted_decs_of(peer);
    let checker = ConstraintChecker::new(&global);
    for dec in less.iter().chain(same.iter()) {
        if !checker
            .satisfied(&dec.constraint)
            .map_err(CoreError::from)?
        {
            return Ok(false);
        }
    }
    let peer_data = system.peer(peer)?;
    checker
        .all_satisfied(peer_data.local_ics.iter())
        .map_err(CoreError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{example1_system, TrustLevel};
    use relalg::{RelationSchema, Tuple};

    #[test]
    fn example1_has_exactly_the_two_paper_solutions() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let solutions = solutions_for(&sys, &p1, SolutionOptions::default()).unwrap();
        assert_eq!(solutions.len(), 2, "paper lists exactly r' and r''");

        // r' = {R1(a,b), R1(s,t), R1(c,d), R1(a,e), R2(c,d), R2(a,e)}  (R3 emptied)
        // r'' = {R1(a,b), R1(c,d), R1(a,e), R2(c,d), R2(a,e), R3(s,u)}
        let mut shapes: Vec<(usize, usize, usize)> = solutions
            .iter()
            .map(|s| {
                (
                    s.database.relation("R1").map(|r| r.len()).unwrap_or(0),
                    s.database.relation("R2").map(|r| r.len()).unwrap_or(0),
                    s.database.relation("R3").map(|r| r.len()).unwrap_or(0),
                )
            })
            .collect();
        shapes.sort();
        assert_eq!(shapes, vec![(3, 2, 1), (4, 2, 0)]);

        for s in &solutions {
            // Imported more-trusted data is present in every solution.
            assert!(s.database.holds("R1", &Tuple::strs(["c", "d"])));
            assert!(s.database.holds("R1", &Tuple::strs(["a", "e"])));
            // R2 (more trusted) is never touched.
            assert_eq!(s.database.relation("R2").unwrap().len(), 2);
            // R3(a, f) must be deleted in both solutions.
            assert!(!s.database.holds("R3", &Tuple::strs(["a", "f"])));
        }
        // One solution keeps R1(s, t) and drops R3(s, u); the other does the
        // opposite.
        let keeps_st = solutions
            .iter()
            .filter(|s| s.database.holds("R1", &Tuple::strs(["s", "t"])))
            .count();
        assert_eq!(keeps_st, 1);
    }

    #[test]
    fn stats_report_two_stages() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let (_, stats) = solutions_with_stats(&sys, &p1, SolutionOptions::default()).unwrap();
        assert_eq!(stats.stage1_repairs, 1);
        assert_eq!(stats.stage2_candidates, 2);
        assert!(stats.states_explored > 0);
    }

    #[test]
    fn consistent_system_has_single_identity_solution() {
        let mut sys = P2PSystem::new();
        sys.add_peer("A").unwrap();
        sys.add_peer("B").unwrap();
        let a = PeerId::new("A");
        let b = PeerId::new("B");
        sys.add_relation(&a, RelationSchema::new("RA", &["x"]))
            .unwrap();
        sys.add_relation(&b, RelationSchema::new("RB", &["x"]))
            .unwrap();
        sys.insert(&a, "RA", Tuple::strs(["v"])).unwrap();
        sys.insert(&b, "RB", Tuple::strs(["v"])).unwrap();
        sys.add_dec(
            &a,
            &b,
            constraints::builders::full_inclusion("d", "RB", "RA", 1).unwrap(),
        )
        .unwrap();
        sys.set_trust(&a, TrustLevel::Less, &b).unwrap();
        assert!(is_already_solution(&sys, &a).unwrap());
        let solutions = solutions_for(&sys, &a, SolutionOptions::default()).unwrap();
        assert_eq!(solutions.len(), 1);
        assert!(solutions[0].delta.is_empty());
    }

    #[test]
    fn example1_is_not_already_a_solution() {
        let sys = example1_system();
        assert!(!is_already_solution(&sys, &PeerId::new("P1")).unwrap());
    }

    #[test]
    fn peers_outside_trusted_decs_are_untouched() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let solutions = solutions_for(&sys, &p1, SolutionOptions::default()).unwrap();
        for s in &solutions {
            // P2 is more trusted: its relation can never change.
            assert_eq!(s.database.relation("R2").unwrap().len(), 2);
        }
        // From P2's own point of view (no DECs, no trust entries), the system
        // is already a solution.
        let p2 = PeerId::new("P2");
        let p2_solutions = solutions_for(&sys, &p2, SolutionOptions::default()).unwrap();
        assert_eq!(p2_solutions.len(), 1);
        assert!(p2_solutions[0].delta.is_empty());
    }

    #[test]
    fn local_ics_filter_solutions() {
        // Same as Example 1 but P1 additionally has a key FD on R1. Importing
        // both (a, b) and (a, e) into R1 violates it, so solutions must drop
        // one of them; since (a, e) is forced by the more-trusted DEC, (a, b)
        // must go. (With the FD, keeping R1(a,b) is impossible.)
        let mut sys = example1_system();
        let p1 = PeerId::new("P1");
        sys.add_local_ic(
            &p1,
            constraints::builders::key_denial("fd_r1", "R1").unwrap(),
        )
        .unwrap();
        let solutions = solutions_for(&sys, &p1, SolutionOptions::default()).unwrap();
        assert!(!solutions.is_empty());
        for s in &solutions {
            assert!(!s.database.holds("R1", &Tuple::strs(["a", "b"])));
            assert!(s.database.holds("R1", &Tuple::strs(["a", "e"])));
        }
    }

    #[test]
    fn unsatisfiable_trusted_dec_yields_no_solution() {
        // A more-trusted peer demands a tuple that the local peer can never
        // have because a local denial IC forbids the relation entirely.
        let mut sys = P2PSystem::new();
        sys.add_peer("A").unwrap();
        sys.add_peer("B").unwrap();
        let a = PeerId::new("A");
        let b = PeerId::new("B");
        sys.add_relation(&a, RelationSchema::new("RA", &["x"]))
            .unwrap();
        sys.add_relation(&b, RelationSchema::new("RB", &["x"]))
            .unwrap();
        sys.insert(&b, "RB", Tuple::strs(["v"])).unwrap();
        sys.add_dec(
            &a,
            &b,
            constraints::builders::full_inclusion("d", "RB", "RA", 1).unwrap(),
        )
        .unwrap();
        sys.set_trust(&a, TrustLevel::Less, &b).unwrap();
        // Local IC: RA must be empty.
        sys.add_local_ic(
            &a,
            constraints::Constraint::new(
                "empty_ra",
                vec![constraints::AtomPattern::parse("RA", &["X"])],
                vec![],
                constraints::ConstraintHead::False,
            )
            .unwrap(),
        )
        .unwrap();
        let solutions = solutions_for(&sys, &a, SolutionOptions::default()).unwrap();
        assert!(solutions.is_empty());
    }
}

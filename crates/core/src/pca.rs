//! Peer consistent answers (Definition 5) by solution enumeration.
//!
//! A ground tuple `t̄` is a *peer consistent answer* to a query `Q(x̄) ∈ L(P)`
//! posed to peer `P` iff `r′|P |= Q(t̄)` for **every** solution `r′` for `P`.
//! This module computes PCAs directly from the solutions of
//! [`crate::solution`]; it is the semantic reference implementation that the
//! first-order rewriting ([`crate::rewriting`]) and the logic-program
//! approaches ([`crate::asp`], [`crate::answer`]) are validated against and
//! benchmarked as the "naive" baseline.

use crate::solution::{solutions_with_stats, SolutionOptions, SolutionStats};
use crate::system::{P2PSystem, PeerId};
use crate::Result;
use relalg::query::{Formula, QueryEvaluator};
use relalg::{Database, Tuple};
use std::collections::BTreeSet;

/// Result of a peer-consistent-answer computation via solutions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcaResult {
    /// The peer consistent answers.
    pub answers: BTreeSet<Tuple>,
    /// Number of solutions that were enumerated.
    pub solution_count: usize,
    /// Search statistics.
    pub stats: SolutionStats,
}

/// Compute the peer consistent answers of `query` (with answer variables
/// `free_vars`) posed to `peer`, by enumerating the peer's solutions and
/// intersecting the answers over the peer's portion of each solution.
///
/// When the peer has no solution at all the answer set is empty (there is no
/// peer consistent way to read the data).
pub fn peer_consistent_answers(
    system: &P2PSystem,
    peer: &PeerId,
    query: &Formula,
    free_vars: &[String],
    options: SolutionOptions,
) -> Result<PcaResult> {
    // The query must be in the peer's own language L(P).
    let peer_data = system.peer(peer)?;
    for relation in query.relations() {
        if !peer_data.schema.contains(&relation) {
            return Err(crate::error::CoreError::UnknownRelation {
                peer: peer.to_string(),
                relation,
            });
        }
    }

    let (solutions, stats) = solutions_with_stats(system, peer, options)?;
    let mut answers: Option<BTreeSet<Tuple>> = None;
    for solution in &solutions {
        let restricted: Database = system.restrict_to_peer(&solution.database, peer)?;
        let evaluator = QueryEvaluator::new(&restricted);
        let these = evaluator.answers(query, free_vars)?;
        answers = Some(match answers {
            None => these,
            Some(acc) => acc.intersection(&these).cloned().collect(),
        });
    }
    Ok(PcaResult {
        answers: answers.unwrap_or_default(),
        solution_count: solutions.len(),
        stats,
    })
}

/// Convenience helper: answer variables by name.
pub fn vars(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{example1_system, TrustLevel};
    use relalg::RelationSchema;

    #[test]
    fn example2_peer_consistent_answers() {
        // Query Q: R1(x, y) posed to P1. The paper's PCAs are
        // (a, b), (c, d), (a, e).
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let q = Formula::atom("R1", vec!["X", "Y"]);
        let result = peer_consistent_answers(
            &sys,
            &p1,
            &q,
            &vars(&["X", "Y"]),
            SolutionOptions::default(),
        )
        .unwrap();
        assert_eq!(result.solution_count, 2);
        assert_eq!(
            result.answers,
            BTreeSet::from([
                Tuple::strs(["a", "b"]),
                Tuple::strs(["c", "d"]),
                Tuple::strs(["a", "e"]),
            ])
        );
    }

    #[test]
    fn pca_can_return_answers_not_in_the_original_instance() {
        // (c, d) and (a, e) are imported from P2 — they are PCAs even though
        // they are not answers over P1's original instance (the paper notes
        // this difference with classical CQA).
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let original = sys.peer(&p1).unwrap().instance.clone();
        assert!(!original.holds("R1", &Tuple::strs(["c", "d"])));
        let q = Formula::atom("R1", vec!["X", "Y"]);
        let result = peer_consistent_answers(
            &sys,
            &p1,
            &q,
            &vars(&["X", "Y"]),
            SolutionOptions::default(),
        )
        .unwrap();
        assert!(result.answers.contains(&Tuple::strs(["c", "d"])));
    }

    #[test]
    fn queries_must_use_the_peers_language() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        // R2 belongs to P2, not P1.
        let q = Formula::atom("R2", vec!["X", "Y"]);
        assert!(peer_consistent_answers(
            &sys,
            &p1,
            &q,
            &vars(&["X", "Y"]),
            SolutionOptions::default()
        )
        .is_err());
    }

    #[test]
    fn existential_queries_are_supported() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        // ∃y R1(x, y): keys surviving in every solution. Key `s` survives in
        // only one of the two solutions, so it is not peer consistent.
        let q = Formula::exists(vec!["Y"], Formula::atom("R1", vec!["X", "Y"]));
        let result =
            peer_consistent_answers(&sys, &p1, &q, &vars(&["X"]), SolutionOptions::default())
                .unwrap();
        assert_eq!(
            result.answers,
            BTreeSet::from([Tuple::strs(["a"]), Tuple::strs(["c"])])
        );
    }

    #[test]
    fn peer_without_constraints_gets_plain_answers() {
        let mut sys = P2PSystem::new();
        sys.add_peer("A").unwrap();
        let a = PeerId::new("A");
        sys.add_relation(&a, RelationSchema::new("R", &["x"]))
            .unwrap();
        sys.insert(&a, "R", Tuple::strs(["v"])).unwrap();
        let q = Formula::atom("R", vec!["X"]);
        let result =
            peer_consistent_answers(&sys, &a, &q, &vars(&["X"]), SolutionOptions::default())
                .unwrap();
        assert_eq!(result.solution_count, 1);
        assert_eq!(result.answers, BTreeSet::from([Tuple::strs(["v"])]));
    }

    #[test]
    fn no_solutions_means_no_answers() {
        let mut sys = P2PSystem::new();
        sys.add_peer("A").unwrap();
        sys.add_peer("B").unwrap();
        let a = PeerId::new("A");
        let b = PeerId::new("B");
        sys.add_relation(&a, RelationSchema::new("RA", &["x"]))
            .unwrap();
        sys.add_relation(&b, RelationSchema::new("RB", &["x"]))
            .unwrap();
        sys.insert(&a, "RA", Tuple::strs(["w"])).unwrap();
        sys.insert(&b, "RB", Tuple::strs(["v"])).unwrap();
        sys.add_dec(
            &a,
            &b,
            constraints::builders::full_inclusion("d", "RB", "RA", 1).unwrap(),
        )
        .unwrap();
        sys.set_trust(&a, TrustLevel::Less, &b).unwrap();
        sys.add_local_ic(
            &a,
            constraints::Constraint::new(
                "empty_ra",
                vec![constraints::AtomPattern::parse("RA", &["X"])],
                vec![],
                constraints::ConstraintHead::False,
            )
            .unwrap(),
        )
        .unwrap();
        let q = Formula::atom("RA", vec!["X"]);
        let result =
            peer_consistent_answers(&sys, &a, &q, &vars(&["X"]), SolutionOptions::default())
                .unwrap();
        assert_eq!(result.solution_count, 0);
        assert!(result.answers.is_empty());
    }
}

//! Peer consistent answers (Definition 5): helpers and semantic tests.
//!
//! A ground tuple `t̄` is a *peer consistent answer* to a query `Q(x̄) ∈ L(P)`
//! posed to peer `P` iff `r′|P |= Q(t̄)` for **every** solution `r′` for `P`.
//! The semantic reference implementation — enumerate the solutions of
//! [`crate::solution`] and intersect the per-solution answers — lives behind
//! [`crate::engine::Strategy::Naive`] on the [`crate::engine::QueryEngine`]
//! facade, which memoizes the enumerated solutions per peer. (The legacy
//! free function `peer_consistent_answers` and its `PcaResult` struct were
//! removed after a deprecation cycle; the engine is the single entry point.)

/// Convenience helper: answer variables by name.
pub fn vars(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{QueryEngine, Strategy};
    use crate::system::{example1_system, P2PSystem, PeerId, TrustLevel};
    use relalg::query::Formula;
    use relalg::{RelationSchema, Tuple};
    use std::collections::BTreeSet;

    fn naive_engine(system: P2PSystem) -> QueryEngine {
        QueryEngine::builder(system)
            .strategy(Strategy::Naive)
            .build()
    }

    #[test]
    fn example2_peer_consistent_answers() {
        // Query Q: R1(x, y) posed to P1. The paper's PCAs are
        // (a, b), (c, d), (a, e).
        let engine = naive_engine(example1_system());
        let p1 = PeerId::new("P1");
        let q = Formula::atom("R1", vec!["X", "Y"]);
        let result = engine.answer(&p1, &q, &vars(&["X", "Y"])).unwrap();
        assert_eq!(result.stats.worlds, 2);
        assert_eq!(
            result.tuples,
            BTreeSet::from([
                Tuple::strs(["a", "b"]),
                Tuple::strs(["c", "d"]),
                Tuple::strs(["a", "e"]),
            ])
        );
    }

    #[test]
    fn pca_can_return_answers_not_in_the_original_instance() {
        // (c, d) and (a, e) are imported from P2 — they are PCAs even though
        // they are not answers over P1's original instance (the paper notes
        // this difference with classical CQA).
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let original = sys.peer(&p1).unwrap().instance.clone();
        assert!(!original.holds("R1", &Tuple::strs(["c", "d"])));
        let engine = naive_engine(sys);
        let q = Formula::atom("R1", vec!["X", "Y"]);
        let result = engine.answer(&p1, &q, &vars(&["X", "Y"])).unwrap();
        assert!(result.contains(&Tuple::strs(["c", "d"])));
    }

    #[test]
    fn queries_must_use_the_peers_language() {
        let engine = naive_engine(example1_system());
        let p1 = PeerId::new("P1");
        // R2 belongs to P2, not P1.
        let q = Formula::atom("R2", vec!["X", "Y"]);
        assert!(engine.answer(&p1, &q, &vars(&["X", "Y"])).is_err());
    }

    #[test]
    fn existential_queries_are_supported() {
        let engine = naive_engine(example1_system());
        let p1 = PeerId::new("P1");
        // ∃y R1(x, y): keys surviving in every solution. Key `s` survives in
        // only one of the two solutions, so it is not peer consistent.
        let q = Formula::exists(vec!["Y"], Formula::atom("R1", vec!["X", "Y"]));
        let result = engine.answer(&p1, &q, &vars(&["X"])).unwrap();
        assert_eq!(
            result.tuples,
            BTreeSet::from([Tuple::strs(["a"]), Tuple::strs(["c"])])
        );
    }

    #[test]
    fn peer_without_constraints_gets_plain_answers() {
        let mut sys = P2PSystem::new();
        sys.add_peer("A").unwrap();
        let a = PeerId::new("A");
        sys.add_relation(&a, RelationSchema::new("R", &["x"]))
            .unwrap();
        sys.insert(&a, "R", Tuple::strs(["v"])).unwrap();
        let engine = naive_engine(sys);
        let q = Formula::atom("R", vec!["X"]);
        let result = engine.answer(&a, &q, &vars(&["X"])).unwrap();
        assert_eq!(result.stats.worlds, 1);
        assert_eq!(result.tuples, BTreeSet::from([Tuple::strs(["v"])]));
    }

    #[test]
    fn no_solutions_means_no_answers() {
        let mut sys = P2PSystem::new();
        sys.add_peer("A").unwrap();
        sys.add_peer("B").unwrap();
        let a = PeerId::new("A");
        let b = PeerId::new("B");
        sys.add_relation(&a, RelationSchema::new("RA", &["x"]))
            .unwrap();
        sys.add_relation(&b, RelationSchema::new("RB", &["x"]))
            .unwrap();
        sys.insert(&a, "RA", Tuple::strs(["w"])).unwrap();
        sys.insert(&b, "RB", Tuple::strs(["v"])).unwrap();
        sys.add_dec(
            &a,
            &b,
            constraints::builders::full_inclusion("d", "RB", "RA", 1).unwrap(),
        )
        .unwrap();
        sys.set_trust(&a, TrustLevel::Less, &b).unwrap();
        sys.add_local_ic(
            &a,
            constraints::Constraint::new(
                "empty_ra",
                vec![constraints::AtomPattern::parse("RA", &["X"])],
                vec![],
                constraints::ConstraintHead::False,
            )
            .unwrap(),
        )
        .unwrap();
        let engine = naive_engine(sys);
        let q = Formula::atom("RA", vec!["X"]);
        let result = engine.answer(&a, &q, &vars(&["X"])).unwrap();
        assert_eq!(result.stats.worlds, 0);
        assert!(result.is_empty());
    }
}

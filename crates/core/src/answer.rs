//! Peer consistent answers via the answer-set specification programs.
//!
//! "The peer consistent answers to a query posed to the peer can be obtained
//! by running the query, expressed as a query program in terms of the
//! virtually repaired tables, in combination with the specification program,
//! … under the skeptical answer set semantics" (Section 3.2). This module
//! does exactly that:
//!
//! 1. the query (a positive existential first-order formula over the peer's
//!    relations) is compiled into one rule per disjunct of its disjunctive
//!    normal form, with every relation atom re-targeted at the *solution*
//!    predicate of the specification (`R__tss` for flexible relations);
//! 2. the query rules are appended to the specification program
//!    ([`crate::asp::annotated`] for the direct semantics, or
//!    [`crate::asp::transitive`] for the global semantics of Section 4.3);
//! 3. the cautious consequences of the answer predicate are decoded back
//!    into tuples.

use crate::asp::annotated::{annotated_program, convert_op, convert_term};
use crate::asp::encode::{ValueDecoder, ANSWER_PREDICATE};
use crate::asp::transitive::transitive_program;
use crate::error::CoreError;
use crate::system::{P2PSystem, PeerId};
use crate::Result;
use datalog::{AnswerSets, Atom, BodyItem, Builtin, Program, Rule, SolverConfig, Term};
use relalg::query::{CompareOp, Formula, Term as RelTerm};
use relalg::Tuple;
use std::collections::BTreeSet;

/// Result of an ASP-based peer-consistent-answer computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AspAnswer {
    /// The peer consistent answers.
    pub answers: BTreeSet<Tuple>,
    /// Number of answer sets (solutions) of the specification program.
    pub answer_set_count: usize,
    /// Branch nodes explored by the answer-set solver.
    pub branch_nodes: usize,
    /// Whether the HCF shift was applied by the solver.
    pub used_shift: bool,
}

/// One conjunct of a DNF query.
enum Conjunct {
    Atom {
        relation: String,
        terms: Vec<RelTerm>,
    },
    Compare {
        op: CompareOp,
        left: RelTerm,
        right: RelTerm,
    },
}

/// Peer consistent answers via the (direct) annotated specification program.
pub fn answers_via_asp(
    system: &P2PSystem,
    peer: &PeerId,
    query: &Formula,
    free_vars: &[String],
    config: SolverConfig,
) -> Result<AspAnswer> {
    let spec = annotated_program(system, peer)?;
    check_query_language(system, peer, query)?;
    let mut program = spec.program.clone();
    append_query_rules(&mut program, query, free_vars, &|relation| {
        spec.solution_predicate(relation)
    })?;
    evaluate(&program, &spec.decoder, free_vars, config)
}

/// Peer consistent answers via the combined (transitive, Section 4.3)
/// specification program.
pub fn answers_via_transitive_asp(
    system: &P2PSystem,
    peer: &PeerId,
    query: &Formula,
    free_vars: &[String],
    config: SolverConfig,
) -> Result<AspAnswer> {
    let spec = transitive_program(system, peer)?;
    check_query_language(system, peer, query)?;
    let mut program = spec.program.clone();
    append_query_rules(&mut program, query, free_vars, &|relation| {
        spec.solution_predicate(system, relation)
    })?;
    evaluate(&program, &spec.decoder, free_vars, config)
}

/// Verify the query is expressed in the peer's own language `L(P)`.
fn check_query_language(system: &P2PSystem, peer: &PeerId, query: &Formula) -> Result<()> {
    let peer_data = system.peer(peer)?;
    for relation in query.relations() {
        if !peer_data.schema.contains(&relation) {
            return Err(CoreError::UnknownRelation {
                peer: peer.to_string(),
                relation,
            });
        }
    }
    Ok(())
}

/// Append the query rules (one per DNF disjunct) to the program.
pub(crate) fn append_query_rules(
    program: &mut Program,
    query: &Formula,
    free_vars: &[String],
    solution_predicate: &dyn Fn(&str) -> String,
) -> Result<()> {
    let disjuncts = to_dnf(query)?;
    if disjuncts.is_empty() {
        // The query is equivalent to `false`; no rules, no answers.
        return Ok(());
    }
    let head_terms: Vec<Term> = free_vars.iter().map(|v| Term::var(v.clone())).collect();
    for conjuncts in disjuncts {
        let mut body: Vec<BodyItem> = Vec::new();
        let mut bound: BTreeSet<String> = BTreeSet::new();
        for conjunct in &conjuncts {
            match conjunct {
                Conjunct::Atom { relation, terms } => {
                    let mapped: Vec<Term> = terms.iter().map(convert_term).collect();
                    for t in terms {
                        if let Some(v) = t.as_var() {
                            bound.insert(v.to_string());
                        }
                    }
                    body.push(BodyItem::Pos(Atom::from_terms(
                        solution_predicate(relation),
                        mapped,
                    )));
                }
                Conjunct::Compare { op, left, right } => {
                    body.push(BodyItem::Builtin(Builtin::new(
                        convert_op(*op),
                        convert_term(left),
                        convert_term(right),
                    )));
                }
            }
        }
        for v in free_vars {
            if !bound.contains(v) {
                return Err(CoreError::Unsupported(format!(
                    "answer variable `{v}` is not bound by a relational atom in every disjunct"
                )));
            }
        }
        program.add_rule(Rule::new(
            vec![Atom::from_terms(ANSWER_PREDICATE, head_terms.clone())],
            body,
        ));
    }
    Ok(())
}

/// Solve and extract the cautious answers.
fn evaluate(
    program: &Program,
    decoder: &ValueDecoder,
    free_vars: &[String],
    config: SolverConfig,
) -> Result<AspAnswer> {
    let sets = AnswerSets::compute(program, config)?;
    let mut answers = BTreeSet::new();
    for args in sets.cautious_tuples(ANSWER_PREDICATE) {
        let tuple = decoder.decode_tuple(&args);
        if tuple.arity() == free_vars.len() {
            answers.insert(tuple);
        }
    }
    Ok(AspAnswer {
        answers,
        answer_set_count: sets.len(),
        branch_nodes: sets.branch_nodes,
        used_shift: sets.used_shift,
    })
}

/// Convert a positive existential formula into disjunctive normal form.
fn to_dnf(query: &Formula) -> Result<Vec<Vec<Conjunct>>> {
    match query {
        Formula::True => Ok(vec![vec![]]),
        Formula::False => Ok(vec![]),
        Formula::Atom { relation, terms } => Ok(vec![vec![Conjunct::Atom {
            relation: relation.clone(),
            terms: terms.clone(),
        }]]),
        Formula::Compare { op, left, right } => Ok(vec![vec![Conjunct::Compare {
            op: *op,
            left: left.clone(),
            right: right.clone(),
        }]]),
        Formula::And(parts) => {
            let mut acc: Vec<Vec<Conjunct>> = vec![vec![]];
            for part in parts {
                let part_dnf = to_dnf(part)?;
                let mut next = Vec::new();
                for existing in &acc {
                    for disjunct in &part_dnf {
                        let mut merged: Vec<Conjunct> =
                            existing.iter().map(clone_conjunct).collect();
                        merged.extend(disjunct.iter().map(clone_conjunct));
                        next.push(merged);
                    }
                }
                acc = next;
            }
            Ok(acc)
        }
        Formula::Or(parts) => {
            let mut out = Vec::new();
            for part in parts {
                out.extend(to_dnf(part)?);
            }
            Ok(out)
        }
        Formula::Exists(_, inner) => to_dnf(inner),
        Formula::Not(_) | Formula::Implies(_, _) | Formula::Forall(_, _) => {
            Err(CoreError::Unsupported(
                "the ASP query translation supports positive existential queries only".to_string(),
            ))
        }
    }
}

fn clone_conjunct(c: &Conjunct) -> Conjunct {
    match c {
        Conjunct::Atom { relation, terms } => Conjunct::Atom {
            relation: relation.clone(),
            terms: terms.clone(),
        },
        Conjunct::Compare { op, left, right } => Conjunct::Compare {
            op: *op,
            left: left.clone(),
            right: right.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pca::{peer_consistent_answers, vars};
    use crate::solution::SolutionOptions;
    use crate::system::example1_system;

    #[test]
    fn example2_answers_via_asp_match_the_paper() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let q = Formula::atom("R1", vec!["X", "Y"]);
        let result =
            answers_via_asp(&sys, &p1, &q, &vars(&["X", "Y"]), SolverConfig::default()).unwrap();
        assert_eq!(result.answer_set_count, 2);
        assert_eq!(
            result.answers,
            BTreeSet::from([
                Tuple::strs(["a", "b"]),
                Tuple::strs(["c", "d"]),
                Tuple::strs(["a", "e"]),
            ])
        );
        assert!(result.used_shift);
    }

    #[test]
    fn asp_and_semantic_routes_agree_on_example1() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        for (query, fv) in [
            (Formula::atom("R1", vec!["X", "Y"]), vars(&["X", "Y"])),
            (
                Formula::exists(vec!["Y"], Formula::atom("R1", vec!["X", "Y"])),
                vars(&["X"]),
            ),
        ] {
            let semantic =
                peer_consistent_answers(&sys, &p1, &query, &fv, SolutionOptions::default())
                    .unwrap();
            let asp = answers_via_asp(&sys, &p1, &query, &fv, SolverConfig::default()).unwrap();
            assert_eq!(semantic.answers, asp.answers, "query {query}");
        }
    }

    #[test]
    fn conjunctive_join_query_via_asp() {
        // ∃y (R1(x, y) ∧ R1(z, y)) — self-join on the second column of the
        // peer's (virtually repaired) relation.
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let q = Formula::exists(
            vec!["Y"],
            Formula::and(vec![
                Formula::atom("R1", vec!["X", "Y"]),
                Formula::atom("R1", vec!["Z", "Y"]),
            ]),
        );
        let semantic = peer_consistent_answers(
            &sys,
            &p1,
            &q,
            &vars(&["X", "Z"]),
            SolutionOptions::default(),
        )
        .unwrap();
        let asp =
            answers_via_asp(&sys, &p1, &q, &vars(&["X", "Z"]), SolverConfig::default()).unwrap();
        assert_eq!(semantic.answers, asp.answers);
        assert!(asp.answers.contains(&Tuple::strs(["a", "a"])));
    }

    #[test]
    fn union_queries_are_supported() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let q = Formula::or(vec![
            Formula::atom("R1", vec!["X", "X"]),
            Formula::exists(vec!["Y"], Formula::atom("R1", vec!["X", "Y"])),
        ]);
        let asp = answers_via_asp(&sys, &p1, &q, &vars(&["X"]), SolverConfig::default()).unwrap();
        assert!(asp.answers.contains(&Tuple::strs(["a"])));
        assert!(asp.answers.contains(&Tuple::strs(["c"])));
    }

    #[test]
    fn negated_queries_are_rejected() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let q = Formula::not(Formula::atom("R1", vec!["X", "Y"]));
        assert!(matches!(
            answers_via_asp(&sys, &p1, &q, &vars(&["X", "Y"]), SolverConfig::default()),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn foreign_relations_are_rejected() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let q = Formula::atom("R2", vec!["X", "Y"]);
        assert!(matches!(
            answers_via_asp(&sys, &p1, &q, &vars(&["X", "Y"]), SolverConfig::default()),
            Err(CoreError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn unbound_answer_variable_is_rejected() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let q = Formula::atom("R1", vec!["X", "Y"]);
        assert!(matches!(
            answers_via_asp(&sys, &p1, &q, &vars(&["Z"]), SolverConfig::default()),
            Err(CoreError::Unsupported(_))
        ));
    }

    #[test]
    fn transitive_answers_include_transitively_imported_data() {
        use crate::system::TrustLevel;
        use constraints::builders::full_inclusion;
        use relalg::RelationSchema;
        let mut sys = P2PSystem::new();
        for p in ["A", "B", "C"] {
            sys.add_peer(p).unwrap();
        }
        let a = PeerId::new("A");
        let b = PeerId::new("B");
        let c = PeerId::new("C");
        for (peer, rel) in [(&a, "RA"), (&b, "RB"), (&c, "RC")] {
            sys.add_relation(peer, RelationSchema::new(rel, &["x"]))
                .unwrap();
        }
        sys.insert(&c, "RC", Tuple::strs(["v"])).unwrap();
        sys.add_dec(&a, &b, full_inclusion("dab", "RB", "RA", 1).unwrap())
            .unwrap();
        sys.add_dec(&b, &c, full_inclusion("dbc", "RC", "RB", 1).unwrap())
            .unwrap();
        sys.set_trust(&a, TrustLevel::Less, &b).unwrap();
        sys.set_trust(&b, TrustLevel::Less, &c).unwrap();

        let q = Formula::atom("RA", vec!["X"]);
        let direct = answers_via_asp(&sys, &a, &q, &vars(&["X"]), SolverConfig::default()).unwrap();
        assert!(direct.answers.is_empty());
        let transitive =
            answers_via_transitive_asp(&sys, &a, &q, &vars(&["X"]), SolverConfig::default())
                .unwrap();
        assert_eq!(transitive.answers, BTreeSet::from([Tuple::strs(["v"])]));
    }
}

//! Errors raised by the peer-to-peer data exchange core.

use std::fmt;

/// Errors raised by system construction, solution computation and peer
/// consistent query answering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A peer id was added twice.
    DuplicatePeer(String),
    /// A peer id was referenced but never added.
    UnknownPeer(String),
    /// A relation is owned by a different peer than expected.
    RelationOwnedElsewhere { relation: String, owner: String },
    /// A relation was referenced that the given peer does not declare.
    UnknownRelation { peer: String, relation: String },
    /// A query or DEC uses a feature outside the fragment supported by the
    /// selected answering mechanism (e.g. FO rewriting on a referential DEC).
    Unsupported(String),
    /// Propagated relational-layer error.
    Relalg(relalg::RelalgError),
    /// Propagated constraint error.
    Constraint(constraints::ConstraintError),
    /// Propagated repair-engine error.
    Repair(repair::RepairError),
    /// Propagated answer-set engine error.
    Datalog(datalog::DatalogError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicatePeer(p) => write!(f, "peer `{p}` already exists"),
            CoreError::UnknownPeer(p) => write!(f, "unknown peer `{p}`"),
            CoreError::RelationOwnedElsewhere { relation, owner } => {
                write!(f, "relation `{relation}` is owned by peer `{owner}`")
            }
            CoreError::UnknownRelation { peer, relation } => {
                write!(f, "peer `{peer}` does not declare relation `{relation}`")
            }
            CoreError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            CoreError::Relalg(e) => write!(f, "{e}"),
            CoreError::Constraint(e) => write!(f, "{e}"),
            CoreError::Repair(e) => write!(f, "{e}"),
            CoreError::Datalog(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<relalg::RelalgError> for CoreError {
    fn from(e: relalg::RelalgError) -> Self {
        CoreError::Relalg(e)
    }
}

impl From<constraints::ConstraintError> for CoreError {
    fn from(e: constraints::ConstraintError) -> Self {
        CoreError::Constraint(e)
    }
}

impl From<repair::RepairError> for CoreError {
    fn from(e: repair::RepairError) -> Self {
        CoreError::Repair(e)
    }
}

impl From<datalog::DatalogError> for CoreError {
    fn from(e: datalog::DatalogError) -> Self {
        CoreError::Datalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_names() {
        assert!(CoreError::DuplicatePeer("P1".into())
            .to_string()
            .contains("P1"));
        assert!(CoreError::UnknownPeer("P9".into())
            .to_string()
            .contains("P9"));
        assert!(CoreError::Unsupported("negated query atoms".into())
            .to_string()
            .contains("negated"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let e: CoreError = relalg::RelalgError::UnknownRelation("R".into()).into();
        assert!(matches!(e, CoreError::Relalg(_)));
        let e: CoreError = datalog::DatalogError::UnsafeRule("p(X).".into()).into();
        assert!(matches!(e, CoreError::Datalog(_)));
    }
}

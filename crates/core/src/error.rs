//! Errors raised by the peer-to-peer data exchange core.

use std::fmt;

/// Errors raised by system construction, solution computation and peer
/// consistent query answering.
///
/// Marked `#[non_exhaustive]`: downstream matches need a wildcard arm so new
/// failure modes (such as [`CoreError::Transport`]) can be added without a
/// breaking release.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A peer id was added twice.
    DuplicatePeer(String),
    /// A peer id was referenced but never added.
    UnknownPeer(String),
    /// A relation is owned by a different peer than expected.
    RelationOwnedElsewhere { relation: String, owner: String },
    /// A relation was referenced that the given peer does not declare.
    UnknownRelation { peer: String, relation: String },
    /// A constraint (DEC or local IC) references a relation no peer declares.
    /// Raised eagerly by [`crate::P2PSystem::add_dec`] /
    /// [`crate::P2PSystem::add_local_ic`]; the static analyzer reports the
    /// batch-mode equivalent as diagnostic `PDES-A001`.
    ConstraintUnknownRelation {
        /// Name of the offending constraint.
        constraint: String,
        /// The undeclared relation.
        relation: String,
    },
    /// A constraint atom's arity differs from the declared relation schema.
    /// Raised eagerly by [`crate::P2PSystem::add_dec`] /
    /// [`crate::P2PSystem::add_local_ic`]; the static analyzer reports the
    /// batch-mode equivalent as diagnostic `PDES-A002`.
    ConstraintArity {
        /// Name of the offending constraint.
        constraint: String,
        /// The relation whose schema disagrees.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Arity used by the constraint atom.
        found: usize,
    },
    /// Strict static analysis refused engine construction
    /// ([`crate::engine::QueryEngineBuilder::strict_analysis`]).
    AnalysisRejected {
        /// Number of error-severity diagnostics.
        errors: usize,
        /// The rendered diagnostic report.
        report: String,
    },
    /// A query or DEC uses a feature outside the fragment supported by the
    /// selected answering mechanism (e.g. FO rewriting on a referential DEC).
    Unsupported(String),
    /// Propagated relational-layer error.
    Relalg(relalg::RelalgError),
    /// Propagated constraint error.
    Constraint(constraints::ConstraintError),
    /// Propagated repair-engine error.
    Repair(repair::RepairError),
    /// Propagated answer-set engine error.
    Datalog(datalog::DatalogError),
    /// A store transport failed to deliver a request to (or a response from)
    /// a worker shard — a disconnected channel, a dead worker thread, or a
    /// malformed reply. Carries the index of the shard that failed; the
    /// failure description is a rendered string because transports sit below
    /// the error type and their faults are not recoverable values.
    Transport {
        /// Index of the shard whose transport failed.
        shard: usize,
        /// Rendered description of the underlying failure.
        source: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicatePeer(p) => write!(f, "peer `{p}` already exists"),
            CoreError::UnknownPeer(p) => write!(f, "unknown peer `{p}`"),
            CoreError::RelationOwnedElsewhere { relation, owner } => {
                write!(f, "relation `{relation}` is owned by peer `{owner}`")
            }
            CoreError::UnknownRelation { peer, relation } => {
                write!(f, "peer `{peer}` does not declare relation `{relation}`")
            }
            CoreError::ConstraintUnknownRelation {
                constraint,
                relation,
            } => write!(
                f,
                "constraint `{constraint}` references undeclared relation `{relation}`"
            ),
            CoreError::ConstraintArity {
                constraint,
                relation,
                expected,
                found,
            } => write!(
                f,
                "constraint `{constraint}` uses relation `{relation}` with arity {found}, \
                 declared with arity {expected}"
            ),
            CoreError::AnalysisRejected { errors, report } => {
                write!(
                    f,
                    "static analysis rejected the system ({errors} errors):\n{report}"
                )
            }
            CoreError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            CoreError::Relalg(e) => write!(f, "{e}"),
            CoreError::Constraint(e) => write!(f, "{e}"),
            CoreError::Repair(e) => write!(f, "{e}"),
            CoreError::Datalog(e) => write!(f, "{e}"),
            CoreError::Transport { shard, source } => {
                write!(f, "transport failure on shard {shard}: {source}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<relalg::RelalgError> for CoreError {
    fn from(e: relalg::RelalgError) -> Self {
        CoreError::Relalg(e)
    }
}

impl From<constraints::ConstraintError> for CoreError {
    fn from(e: constraints::ConstraintError) -> Self {
        CoreError::Constraint(e)
    }
}

impl From<repair::RepairError> for CoreError {
    fn from(e: repair::RepairError) -> Self {
        CoreError::Repair(e)
    }
}

impl From<datalog::DatalogError> for CoreError {
    fn from(e: datalog::DatalogError) -> Self {
        CoreError::Datalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_offending_names() {
        assert!(CoreError::DuplicatePeer("P1".into())
            .to_string()
            .contains("P1"));
        assert!(CoreError::UnknownPeer("P9".into())
            .to_string()
            .contains("P9"));
        assert!(CoreError::Unsupported("negated query atoms".into())
            .to_string()
            .contains("negated"));
        let transport = CoreError::Transport {
            shard: 2,
            source: "reply channel disconnected".into(),
        };
        assert!(transport.to_string().contains("shard 2"));
        assert!(transport.to_string().contains("disconnected"));
    }

    #[test]
    fn conversions_from_substrate_errors() {
        let e: CoreError = relalg::RelalgError::UnknownRelation("R".into()).into();
        assert!(matches!(e, CoreError::Relalg(_)));
        let e: CoreError = datalog::DatalogError::UnsafeRule("p(X).".into()).into();
        assert!(matches!(e, CoreError::Datalog(_)));
    }
}

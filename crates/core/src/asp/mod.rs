//! Answer-set-programming specifications of a peer's solutions.
//!
//! The paper's second (and more general) mechanism for peer consistent query
//! answering specifies the solutions of a peer as the stable models of a
//! disjunctive logic program and answers queries by cautious reasoning over
//! those models (Sections 3 and 4). This module provides:
//!
//! * [`encode`] — conversions between relational values/tuples and logic
//!   program constants, fact generation and predicate-name conventions;
//! * [`annotated`] — the general *annotation-based* specification program
//!   (the style of Section 4.2 and the appendix, with `td`/`ta`/`fa`/`tss`
//!   annotations realized as predicate suffixes). This is the workhorse
//!   behind the [`crate::engine`] ASP strategies and the benchmarks;
//! * [`paper`] — the verbatim programs listed in the paper (the Section 3.1
//!   GAV choice program, the appendix LAV program and the Example 4 combined
//!   program), used to validate the answer-set engine against every stable
//!   model the paper reports;
//! * [`transitive`] — composition of per-peer annotated programs into the
//!   global programs of Section 4.3.

pub mod annotated;
pub mod encode;
pub mod paper;
pub mod transitive;

pub use annotated::{annotated_program, annotated_program_with, AnnotatedSpec};
pub use transitive::{transitive_program, transitive_program_with, TransitiveSpec};

//! Encoding of relational data as logic-program facts and back.
//!
//! Values are encoded as constant symbols via their textual rendering and
//! decoded back through a [`ValueDecoder`] built from the system's active
//! domain, so that the original typed values (integers vs. strings) are
//! recovered. Two distinct values that render identically (e.g. the integer
//! `1` and the string `"1"`) would collide; the workloads and examples in
//! this repository never mix the two forms within one system, and the
//! limitation is documented in DESIGN.md.

use crate::system::P2PSystem;
use datalog::{Atom, Program, Rule, Term};
use relalg::{Database, SymbolTable, Tuple, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Encode a value as a constant symbol.
pub fn encode_value(value: &Value) -> String {
    value.render().to_string()
}

/// Encode a tuple as a vector of constant terms.
pub fn encode_tuple(tuple: &Tuple) -> Vec<Term> {
    tuple.iter().map(|v| Term::cnst(encode_value(v))).collect()
}

/// Encode a value as a constant symbol sharing the store's interned text:
/// every occurrence of an already-interned constant aliases one `Arc<str>`
/// ([`SymbolTable::resolve_text`]) instead of re-allocating its rendering
/// per tuple occurrence. Values the table has never seen (program-introduced
/// constants) fall back to a fresh allocation.
pub fn encode_value_shared(value: &Value, symbols: &SymbolTable) -> Arc<str> {
    match symbols.lookup(value) {
        Some(symbol) => symbols.resolve_text(symbol),
        None => Arc::from(encode_value(value).as_str()),
    }
}

/// [`encode_tuple`] through the shared interned text of
/// [`encode_value_shared`].
pub fn encode_tuple_shared(tuple: &Tuple, symbols: &SymbolTable) -> Vec<Term> {
    tuple
        .iter()
        .map(|v| Term::Const(encode_value_shared(v, symbols)))
        .collect()
}

/// Decodes constant symbols back into the values of a system's domain.
#[derive(Debug, Clone, Default)]
pub struct ValueDecoder {
    map: BTreeMap<String, Value>,
}

impl ValueDecoder {
    /// Build a decoder from every value appearing in the system.
    pub fn for_system(system: &P2PSystem) -> Self {
        let mut map = BTreeMap::new();
        for peer in system.peers() {
            for value in peer.instance.active_domain() {
                map.entry(encode_value(&value)).or_insert(value);
            }
        }
        ValueDecoder { map }
    }

    /// Build a decoder from a single database.
    pub fn for_database(db: &Database) -> Self {
        let mut map = BTreeMap::new();
        for value in db.active_domain() {
            map.entry(encode_value(&value)).or_insert(value);
        }
        ValueDecoder { map }
    }

    /// Decode a symbol; unknown symbols become string values (they can only
    /// arise from constants introduced by the program itself).
    pub fn decode(&self, symbol: &str) -> Value {
        self.map
            .get(symbol)
            .cloned()
            .unwrap_or_else(|| Value::str(symbol))
    }

    /// Decode a full argument vector into a tuple.
    pub fn decode_tuple<S: AsRef<str>>(&self, args: &[S]) -> Tuple {
        Tuple::new(args.iter().map(|a| self.decode(a.as_ref())).collect())
    }
}

/// Positional variable terms `X0 … X{n-1}`.
pub fn positional_vars(arity: usize) -> Vec<Term> {
    (0..arity).map(|i| Term::var(format!("X{i}"))).collect()
}

/// Annotation suffixes used by the annotated specification programs
/// (Section 4.2 / appendix): the names mirror the paper's annotation
/// constants.
pub mod ann {
    /// Original ("true in the database") copy.
    pub const TD: &str = "td";
    /// Advised insertion.
    pub const TA: &str = "ta";
    /// Advised deletion.
    pub const FA: &str = "fa";
    /// True originally or inserted (the paper's `t*`).
    pub const TS: &str = "ts";
    /// True in the solution (the paper's `t**` / `tss`).
    pub const TSS: &str = "tss";
}

/// The predicate name carrying annotation `ann` for `relation` in the
/// specification program generated for `peer`.
pub fn annotated_predicate(peer: &str, relation: &str, ann: &str) -> String {
    format!("{peer}__{relation}__{ann}")
}

/// The answer predicate used when evaluating a query against a specification
/// program.
pub const ANSWER_PREDICATE: &str = "query_answer";

/// Emit every tuple of a database as facts over the original relation names.
pub fn facts_for_database(db: &Database, program: &mut Program) {
    for relation in db.relations() {
        for tuple in relation.iter() {
            program.add_fact(Atom::from_terms(relation.name(), encode_tuple(tuple)));
        }
    }
}

/// [`facts_for_database`] with constant terms aliased through the store's
/// symbol table (the interned data plane's fact encoding).
pub fn facts_for_database_shared(db: &Database, program: &mut Program, symbols: &SymbolTable) {
    for relation in db.relations() {
        for tuple in relation.iter() {
            program.add_fact(Atom::from_terms(
                relation.name(),
                encode_tuple_shared(tuple, symbols),
            ));
        }
    }
}

/// Emit the facts of every peer of the system.
pub fn facts_for_system(system: &P2PSystem, program: &mut Program) {
    for peer in system.peers() {
        facts_for_database(&peer.instance, program);
    }
}

/// [`facts_for_system`] with constant terms aliased through the store's
/// symbol table; see [`encode_value_shared`].
pub fn facts_for_system_shared(system: &P2PSystem, program: &mut Program, symbols: &SymbolTable) {
    for peer in system.peers() {
        facts_for_database_shared(&peer.instance, program, symbols);
    }
}

/// Build a rule `head ← relation(x̄)` copying a material relation into an
/// annotated predicate.
pub fn copy_rule(head_predicate: &str, relation: &str, arity: usize) -> Rule {
    let vars = positional_vars(arity);
    Rule::new(
        vec![Atom::from_terms(head_predicate, vars.clone())],
        vec![datalog::BodyItem::Pos(Atom::from_terms(relation, vars))],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::example1_system;

    #[test]
    fn encode_and_decode_round_trip() {
        let sys = example1_system();
        let decoder = ValueDecoder::for_system(&sys);
        assert_eq!(decoder.decode("a"), Value::str("a"));
        assert_eq!(decoder.decode("unseen"), Value::str("unseen"));
        let t = Tuple::strs(["a", "b"]);
        let encoded = encode_tuple(&t);
        assert_eq!(encoded.len(), 2);
        let decoded = decoder.decode_tuple(&["a", "b"]);
        assert_eq!(decoded, t);
    }

    #[test]
    fn integer_values_round_trip() {
        let mut db = Database::new();
        db.add_relation(relalg::Relation::new(relalg::RelationSchema::new(
            "N",
            &["x"],
        )));
        db.insert("N", Tuple::ints([42])).unwrap();
        let decoder = ValueDecoder::for_database(&db);
        assert_eq!(decoder.decode("42"), Value::int(42));
    }

    #[test]
    fn facts_cover_every_tuple() {
        let sys = example1_system();
        let mut program = Program::new();
        facts_for_system(&sys, &mut program);
        assert_eq!(program.len(), 6);
        let text = program.to_string();
        assert!(text.contains("R1(a, b)."));
        assert!(text.contains("R3(s, u)."));
    }

    #[test]
    fn annotated_predicate_naming() {
        assert_eq!(annotated_predicate("P1", "R1", ann::TA), "P1__R1__ta");
    }

    #[test]
    fn copy_rule_shape() {
        let rule = copy_rule("P1__R1__td", "R1", 2);
        assert_eq!(rule.to_string(), "P1__R1__td(X0, X1) :- R1(X0, X1).");
    }
}

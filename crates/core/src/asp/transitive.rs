//! Transitive (global) specification programs — Section 4.3.
//!
//! When a queried peer `A` imports data from `B`, and `B` in turn imports
//! data from `C`, the direct (local) solution semantics of Definition 4 does
//! not see the `B`–`C` exchange. The paper's proposal is to *combine the
//! local specification programs*: the semantics of `A`'s global solutions is
//! defined directly as the answer sets of the union of the programs, where
//! `A`'s rules read `B`'s relations through `B`'s own repaired (solution)
//! versions — exactly the substitution performed in Example 4, where `P`'s
//! rules (10)–(11) use `S′1` instead of `S1` and rules (12)–(13) define `S′1`
//! from `Q`'s exchange with `C`.
//!
//! [`transitive_program`] implements this composition over the annotated
//! encoding: it generates the per-peer [`AnnotatedSpec`]s of every peer
//! reachable from the queried peer through trusted DECs and rewires each
//! program to read a neighbour's flexible relations through that neighbour's
//! `tss` predicates.

use crate::asp::annotated::AnnotatedSpec;
use crate::asp::encode::ValueDecoder;
use crate::system::{P2PSystem, PeerId};
use crate::Result;
use datalog::{Atom, BodyItem, Program, Rule};
use relalg::{Database, RelationSchema};
use std::collections::{BTreeMap, BTreeSet};

/// The combined (global) specification program for a peer.
#[derive(Debug, Clone)]
pub struct TransitiveSpec {
    /// The queried peer.
    pub peer: PeerId,
    /// The combined program.
    pub program: Program,
    /// The per-peer specifications that were combined, keyed by peer.
    pub specs: BTreeMap<PeerId, AnnotatedSpec>,
    /// Every relation relevant to some combined peer.
    pub relevant: BTreeSet<String>,
    /// Arities of the relevant relations.
    pub arities: BTreeMap<String, usize>,
    /// Decoder from constant symbols back to values.
    pub decoder: ValueDecoder,
}

impl TransitiveSpec {
    /// The predicate holding the global-solution contents of a relation,
    /// seen from the queried peer: the queried peer's `tss` copy when it is
    /// flexible there, otherwise the owning peer's `tss` copy when flexible
    /// there, otherwise the material relation.
    pub fn solution_predicate(&self, system: &P2PSystem, relation: &str) -> String {
        if let Some(spec) = self.specs.get(&self.peer) {
            if spec.flexible.contains(relation) {
                return spec.solution_predicate(relation);
            }
        }
        if let Some(owner) = system.owner_of(relation) {
            if let Some(spec) = self.specs.get(&owner) {
                if spec.flexible.contains(relation) {
                    return spec.solution_predicate(relation);
                }
            }
        }
        relation.to_string()
    }

    /// Decode the answer sets into distinct global solution databases.
    pub fn solution_databases(
        &self,
        system: &P2PSystem,
        sets: &datalog::AnswerSets,
    ) -> Result<Vec<Database>> {
        let mut out: Vec<Database> = Vec::new();
        let mut seen = BTreeSet::new();
        for idx in 0..sets.len() {
            let mut db = Database::new();
            for relation in &self.relevant {
                let arity = *self.arities.get(relation).unwrap_or(&0);
                db.add_relation(relalg::Relation::new(RelationSchema::with_arity(
                    relation.clone(),
                    arity,
                )));
                let pred = self.solution_predicate(system, relation);
                for args in sets.tuples_in(idx, &pred) {
                    db.insert(relation, self.decoder.decode_tuple(&args))?;
                }
            }
            let signature: Vec<relalg::database::GroundAtom> =
                db.ground_atoms().into_iter().collect();
            if seen.insert(signature) {
                out.push(db);
            }
        }
        Ok(out)
    }
}

/// Build the combined specification program for `peer`, including every peer
/// transitively reachable through trusted DECs.
pub fn transitive_program(system: &P2PSystem, peer: &PeerId) -> Result<TransitiveSpec> {
    transitive_program_with(system, peer, None)
}

/// [`transitive_program`] with the per-peer instance facts encoded through
/// the store's symbol table when one is supplied (shared `Arc<str>`
/// constants; see [`crate::asp::encode::encode_value_shared`]).
pub fn transitive_program_with(
    system: &P2PSystem,
    peer: &PeerId,
    symbols: Option<&relalg::SymbolTable>,
) -> Result<TransitiveSpec> {
    // Reachable peers through trusted DECs (BFS).
    let mut reachable: BTreeSet<PeerId> = BTreeSet::new();
    let mut queue = vec![peer.clone()];
    while let Some(current) = queue.pop() {
        if !reachable.insert(current.clone()) {
            continue;
        }
        let (less, same) = system.trusted_decs_of(&current);
        for dec in less.into_iter().chain(same) {
            if !reachable.contains(&dec.other) {
                queue.push(dec.other.clone());
            }
        }
    }

    // Per-peer specifications.
    let mut specs: BTreeMap<PeerId, AnnotatedSpec> = BTreeMap::new();
    for p in &reachable {
        specs.insert(
            p.clone(),
            crate::asp::annotated::annotated_program_with(system, p, symbols)?,
        );
    }

    // For every peer X, relations that are fixed in X's spec but flexible in
    // their owner's spec are read through the owner's `tss` predicate.
    let mut combined = Program::new();
    let mut emitted_facts = false;
    for (owner_of_program, spec) in &specs {
        // Build the substitution for this peer's program.
        let mut substitution: BTreeMap<String, String> = BTreeMap::new();
        for relation in &spec.relevant {
            if spec.flexible.contains(relation) {
                continue;
            }
            if let Some(owner) = system.owner_of(relation) {
                if &owner == owner_of_program {
                    continue;
                }
                if let Some(owner_spec) = specs.get(&owner) {
                    if owner_spec.flexible.contains(relation) {
                        substitution
                            .insert(relation.clone(), owner_spec.solution_predicate(relation));
                    }
                }
            }
        }
        for rule in spec.program.rules() {
            if rule.is_fact() {
                // Material facts are shared; emit them only once.
                if !emitted_facts {
                    combined.add_rule(rule.clone());
                }
                continue;
            }
            combined.add_rule(rewire_rule(rule, &substitution));
        }
        emitted_facts = true;
    }

    // Relevant relations and arities across all specs.
    let mut relevant = BTreeSet::new();
    let mut arities = BTreeMap::new();
    for spec in specs.values() {
        relevant.extend(spec.relevant.iter().cloned());
        for (rel, arity) in &spec.arities {
            arities.insert(rel.clone(), *arity);
        }
    }

    Ok(TransitiveSpec {
        peer: peer.clone(),
        program: combined,
        specs,
        relevant,
        arities,
        decoder: ValueDecoder::for_system(system),
    })
}

/// Replace material relation atoms in a rule's body according to the
/// substitution map. Heads are left untouched: a peer's program only ever
/// derives its own (namespaced) predicates.
fn rewire_rule(rule: &Rule, substitution: &BTreeMap<String, String>) -> Rule {
    let map_atom = |a: &Atom| -> Atom {
        match substitution.get(&a.predicate) {
            Some(new_pred) if !a.strong_neg => Atom {
                predicate: new_pred.clone(),
                strong_neg: false,
                terms: a.terms.clone(),
            },
            _ => a.clone(),
        }
    };
    Rule {
        head: rule.head.clone(),
        body: rule
            .body
            .iter()
            .map(|item| match item {
                BodyItem::Pos(a) => BodyItem::Pos(map_atom(a)),
                BodyItem::Naf(a) => BodyItem::Naf(map_atom(a)),
                other => other.clone(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::TrustLevel;
    use constraints::builders::{full_inclusion, mixed_referential};
    use datalog::{AnswerSets, SolverConfig};
    use relalg::Tuple;

    /// The Example 4 system: peers P, Q, C with
    /// Σ(P, Q) = constraint (3), Σ(Q, C) = U ⊆ S1, (P, less, Q), (Q, less, C),
    /// and the instances r1 = {(a,b)}, s1 = {}, r2 = {}, s2 = {(c,e),(c,f)},
    /// u = {(c,b)}.
    fn example4_system() -> P2PSystem {
        let mut sys = P2PSystem::new();
        for p in ["P", "Q", "C"] {
            sys.add_peer(p).unwrap();
        }
        let p = PeerId::new("P");
        let q = PeerId::new("Q");
        let c = PeerId::new("C");
        for (peer, rel) in [(&p, "R1"), (&p, "R2"), (&q, "S1"), (&q, "S2"), (&c, "U")] {
            sys.add_relation(peer, RelationSchema::new(rel, &["x", "y"]))
                .unwrap();
        }
        sys.insert(&p, "R1", Tuple::strs(["a", "b"])).unwrap();
        sys.insert(&q, "S2", Tuple::strs(["c", "e"])).unwrap();
        sys.insert(&q, "S2", Tuple::strs(["c", "f"])).unwrap();
        sys.insert(&c, "U", Tuple::strs(["c", "b"])).unwrap();
        sys.add_dec(
            &p,
            &q,
            mixed_referential("sigma_p_q", "R1", "S1", "R2", "S2").unwrap(),
        )
        .unwrap();
        sys.add_dec(&q, &c, full_inclusion("sigma_q_c", "U", "S1", 2).unwrap())
            .unwrap();
        sys.set_trust(&p, TrustLevel::Less, &q).unwrap();
        sys.set_trust(&q, TrustLevel::Less, &c).unwrap();
        sys
    }

    #[test]
    fn example4_local_view_sees_no_violation_for_p() {
        // Considered locally, P's DEC is satisfied (S1 is empty), so P's
        // direct solution is the original instance — exactly the paper's
        // observation motivating the transitive case.
        use crate::solution::{solutions_for, SolutionOptions};
        let sys = example4_system();
        let p = PeerId::new("P");
        let local = solutions_for(&sys, &p, SolutionOptions::default()).unwrap();
        assert_eq!(local.len(), 1);
        assert!(local[0].delta.is_empty());
    }

    #[test]
    fn example4_combined_program_has_three_global_solutions() {
        let sys = example4_system();
        let p = PeerId::new("P");
        let spec = transitive_program(&sys, &p).unwrap();
        assert_eq!(spec.specs.len(), 3);
        let sets = AnswerSets::compute(&spec.program, SolverConfig::default()).unwrap();
        let solutions = spec.solution_databases(&sys, &sets).unwrap();
        // The paper lists exactly three solutions.
        assert_eq!(solutions.len(), 3);
        for s in &solutions {
            // S1 acquires (c, b) from C's relation U in every solution.
            assert!(s.holds("S1", &Tuple::strs(["c", "b"])));
            assert_eq!(s.relation("S2").unwrap().len(), 2);
            assert!(s.holds("U", &Tuple::strs(["c", "b"])));
        }
        // Two solutions keep R1(a, b) and insert R2(a, e) or R2(a, f); one
        // deletes R1(a, b) and leaves R2 empty.
        let keep: Vec<&Database> = solutions
            .iter()
            .filter(|s| s.holds("R1", &Tuple::strs(["a", "b"])))
            .collect();
        assert_eq!(keep.len(), 2);
        let mut r2_values: Vec<String> = keep
            .iter()
            .map(|s| {
                s.relation("R2")
                    .unwrap()
                    .iter()
                    .next()
                    .unwrap()
                    .get(1)
                    .unwrap()
                    .to_string()
            })
            .collect();
        r2_values.sort();
        assert_eq!(r2_values, vec!["e".to_string(), "f".to_string()]);
        let drop: Vec<&Database> = solutions
            .iter()
            .filter(|s| !s.holds("R1", &Tuple::strs(["a", "b"])))
            .collect();
        assert_eq!(drop.len(), 1);
        assert!(drop[0].relation("R2").unwrap().is_empty());
    }

    #[test]
    fn transitive_spec_for_isolated_peer_is_just_its_own_program() {
        let sys = example4_system();
        let c = PeerId::new("C");
        let spec = transitive_program(&sys, &c).unwrap();
        assert_eq!(spec.specs.len(), 1);
        let sets = AnswerSets::compute(&spec.program, SolverConfig::default()).unwrap();
        let solutions = spec.solution_databases(&sys, &sets).unwrap();
        assert_eq!(solutions.len(), 1);
        assert!(solutions[0].holds("U", &Tuple::strs(["c", "b"])));
    }

    #[test]
    fn chain_of_inclusions_propagates_transitively() {
        // A ← B ← C chain of full inclusions: the transitive program imports
        // C's tuple all the way into A, while A's direct solutions only see B.
        let mut sys = P2PSystem::new();
        for p in ["A", "B", "C"] {
            sys.add_peer(p).unwrap();
        }
        let a = PeerId::new("A");
        let b = PeerId::new("B");
        let c = PeerId::new("C");
        for (peer, rel) in [(&a, "RA"), (&b, "RB"), (&c, "RC")] {
            sys.add_relation(peer, RelationSchema::new(rel, &["x"]))
                .unwrap();
        }
        sys.insert(&c, "RC", Tuple::strs(["v"])).unwrap();
        sys.add_dec(&a, &b, full_inclusion("dab", "RB", "RA", 1).unwrap())
            .unwrap();
        sys.add_dec(&b, &c, full_inclusion("dbc", "RC", "RB", 1).unwrap())
            .unwrap();
        sys.set_trust(&a, TrustLevel::Less, &b).unwrap();
        sys.set_trust(&b, TrustLevel::Less, &c).unwrap();

        let spec = transitive_program(&sys, &a).unwrap();
        let sets = AnswerSets::compute(&spec.program, SolverConfig::default()).unwrap();
        let solutions = spec.solution_databases(&sys, &sets).unwrap();
        assert_eq!(solutions.len(), 1);
        assert!(solutions[0].holds("RA", &Tuple::strs(["v"])));
        assert!(solutions[0].holds("RB", &Tuple::strs(["v"])));

        // Direct (local) semantics for A does not see the C → B → A path.
        use crate::solution::{solutions_for, SolutionOptions};
        let local = solutions_for(&sys, &a, SolutionOptions::default()).unwrap();
        assert_eq!(local.len(), 1);
        assert!(!local[0].database.holds("RA", &Tuple::strs(["v"])));
    }
}

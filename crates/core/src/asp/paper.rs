//! The specification programs exactly as listed in the paper.
//!
//! These constructors transcribe, rule by rule, the programs the paper shows:
//!
//! * [`section31_program`] — the GAV-style choice program of Section 3.1
//!   (rules (4)–(9)) over a parametric instance of `R1`, `R2`, `S1`, `S2`;
//! * [`example4_program`] — the combined program of Example 4 (rules (4),
//!   (5), (7), (8), (10)–(13)) for the transitive scenario with peer `C`;
//! * [`appendix_lav_program`] — the three-layer LAV program of the appendix,
//!   with the annotation constants `td`, `ta`, `fa`, `tss` encoded as an
//!   extra argument position exactly as printed, and the choice operator
//!   already unfolded into its stable version (`chosen` / `diffchoice`).
//!
//! They serve a single purpose: validating that our answer-set engine
//! produces *exactly* the stable models the paper reports (experiments E3,
//! E4 and E6 in DESIGN.md). The general-purpose generators live in
//! [`crate::asp::annotated`] and [`crate::asp::transitive`].

use crate::asp::encode::encode_tuple;
use datalog::{Atom, BodyItem, Builtin, BuiltinOp, ChoiceAtom, Program, Rule, Term};
use relalg::Tuple;

fn pos(p: &str, args: &[&str]) -> BodyItem {
    BodyItem::Pos(Atom::new(p, args))
}

fn naf(p: &str, args: &[&str]) -> BodyItem {
    BodyItem::Naf(Atom::new(p, args))
}

fn head(p: &str, args: &[&str]) -> Atom {
    Atom::new(p, args)
}

fn add_facts(program: &mut Program, relation: &str, tuples: &[Tuple]) {
    for t in tuples {
        program.add_fact(Atom::from_terms(relation, encode_tuple(t)));
    }
}

/// The Section 3.1 program: peer `P` owns `R1`, `R2`; peer `Q` owns `S1`,
/// `S2`; `(P, less, Q)`; DEC (3) `∀xyz∃w (R1(x,y) ∧ S1(z,y) → R2(x,w) ∧
/// S2(z,w))`. The primed relations are written `r1p` / `r2p`.
///
/// Rules (4)–(9) of the paper:
///
/// ```text
/// (4) R′1(x,y) ← R1(x,y), not ¬R′1(x,y)
/// (5) R′2(x,y) ← R2(x,y), not ¬R′2(x,y)
/// (6) ¬R′1(x,y) ← R1(x,y), S1(z,y), not aux1(x,z), not aux2(z)
/// (7) aux1(x,z) ← R2(x,w), S2(z,w)
/// (8) aux2(z)   ← S2(z,w)
/// (9) ¬R′1(x,y) ∨ R′2(x,w) ← R1(x,y), S1(z,y), not aux1(x,z), S2(z,w),
///                             choice((x,z), w)
/// ```
pub fn section31_program(r1: &[Tuple], r2: &[Tuple], s1: &[Tuple], s2: &[Tuple]) -> Program {
    let mut p = Program::new();
    add_facts(&mut p, "r1", r1);
    add_facts(&mut p, "r2", r2);
    add_facts(&mut p, "s1", s1);
    add_facts(&mut p, "s2", s2);

    // (4) and (5): copy rules with deletion exceptions.
    p.add_rule(Rule::new(
        vec![head("r1p", &["X", "Y"])],
        vec![
            pos("r1", &["X", "Y"]),
            BodyItem::Naf(Atom::new("r1p", &["X", "Y"]).strongly_negated()),
        ],
    ));
    p.add_rule(Rule::new(
        vec![head("r2p", &["X", "Y"])],
        vec![
            pos("r2", &["X", "Y"]),
            BodyItem::Naf(Atom::new("r2p", &["X", "Y"]).strongly_negated()),
        ],
    ));
    // (6): delete R1(x, y) when the violation cannot be fixed by insertion.
    p.add_rule(Rule::new(
        vec![head("r1p", &["X", "Y"]).strongly_negated()],
        vec![
            pos("r1", &["X", "Y"]),
            pos("s1", &["Z", "Y"]),
            naf("aux1", &["X", "Z"]),
            naf("aux2", &["Z"]),
        ],
    ));
    // (7) and (8): the auxiliary predicates.
    p.add_rule(Rule::new(
        vec![head("aux1", &["X", "Z"])],
        vec![pos("r2", &["X", "W"]), pos("s2", &["Z", "W"])],
    ));
    p.add_rule(Rule::new(
        vec![head("aux2", &["Z"])],
        vec![pos("s2", &["Z", "W"])],
    ));
    // (9): either delete R1(x, y) or insert R2(x, w) for a chosen witness w.
    p.add_rule(Rule::new(
        vec![
            head("r1p", &["X", "Y"]).strongly_negated(),
            head("r2p", &["X", "W"]),
        ],
        vec![
            pos("r1", &["X", "Y"]),
            pos("s1", &["Z", "Y"]),
            naf("aux1", &["X", "Z"]),
            pos("s2", &["Z", "W"]),
            BodyItem::Choice(ChoiceAtom::new(
                vec![Term::var("X"), Term::var("Z")],
                vec![Term::var("W")],
            )),
        ],
    ));
    p
}

/// The combined program of Example 4: the Section 3.1 rules with `S1`
/// replaced by its virtual version `s1p` (rules (10), (11)), plus peer `Q`'s
/// rules (12), (13) importing `C`'s relation `U` into `S1`.
pub fn example4_program(
    r1: &[Tuple],
    r2: &[Tuple],
    s1: &[Tuple],
    s2: &[Tuple],
    u: &[Tuple],
) -> Program {
    let mut p = Program::new();
    add_facts(&mut p, "r1", r1);
    add_facts(&mut p, "r2", r2);
    add_facts(&mut p, "s1", s1);
    add_facts(&mut p, "s2", s2);
    add_facts(&mut p, "u", u);

    // (4), (5): copy rules for P's relations.
    p.add_rule(Rule::new(
        vec![head("r1p", &["X", "Y"])],
        vec![
            pos("r1", &["X", "Y"]),
            BodyItem::Naf(Atom::new("r1p", &["X", "Y"]).strongly_negated()),
        ],
    ));
    p.add_rule(Rule::new(
        vec![head("r2p", &["X", "Y"])],
        vec![
            pos("r2", &["X", "Y"]),
            BodyItem::Naf(Atom::new("r2p", &["X", "Y"]).strongly_negated()),
        ],
    ));
    // (7), (8): auxiliary predicates (unchanged).
    p.add_rule(Rule::new(
        vec![head("aux1", &["X", "Z"])],
        vec![pos("r2", &["X", "W"]), pos("s2", &["Z", "W"])],
    ));
    p.add_rule(Rule::new(
        vec![head("aux2", &["Z"])],
        vec![pos("s2", &["Z", "W"])],
    ));
    // (10): like (6) but reading S1 through its virtual version s1p.
    p.add_rule(Rule::new(
        vec![head("r1p", &["X", "Y"]).strongly_negated()],
        vec![
            pos("r1", &["X", "Y"]),
            pos("s1p", &["Z", "Y"]),
            naf("aux1", &["X", "Z"]),
            naf("aux2", &["Z"]),
        ],
    ));
    // (11): like (9) but reading S1 through s1p.
    p.add_rule(Rule::new(
        vec![
            head("r1p", &["X", "Y"]).strongly_negated(),
            head("r2p", &["X", "W"]),
        ],
        vec![
            pos("r1", &["X", "Y"]),
            pos("s1p", &["Z", "Y"]),
            naf("aux1", &["X", "Z"]),
            pos("s2", &["Z", "W"]),
            BodyItem::Choice(ChoiceAtom::new(
                vec![Term::var("X"), Term::var("Z")],
                vec![Term::var("W")],
            )),
        ],
    ));
    // (12): S1's own tuples survive unless deleted.
    p.add_rule(Rule::new(
        vec![head("s1p", &["X", "Y"])],
        vec![
            pos("s1", &["X", "Y"]),
            BodyItem::Naf(Atom::new("s1p", &["X", "Y"]).strongly_negated()),
        ],
    ));
    // (13): Q imports C's relation U into S1.
    p.add_rule(Rule::new(
        vec![head("s1p", &["X", "Y"])],
        vec![pos("u", &["X", "Y"]), naf("s1", &["X", "Y"])],
    ));
    p
}

/// The appendix LAV program for the Section 3.1 instance, with annotation
/// constants as an extra argument and the choice operator already unfolded
/// into its stable version (`chosen` / `diffchoice`), exactly as printed.
pub fn appendix_lav_program(r1: &[Tuple], r2: &[Tuple], s1: &[Tuple], s2: &[Tuple]) -> Program {
    let mut p = Program::new();
    add_facts(&mut p, "r1", r1);
    add_facts(&mut p, "r2", r2);
    add_facts(&mut p, "s1", s1);
    add_facts(&mut p, "s2", s2);

    // Layer 1: preferred legal instances (td copies). The closure denial
    // constraints of the paper are vacuous for td atoms derived only from the
    // sources, so they are omitted here; the repair layer below is verbatim.
    for (prime, source) in [("r1p", "r1"), ("s1p", "s1"), ("r2p", "r2"), ("s2p", "s2")] {
        p.add_rule(Rule::new(
            vec![head(prime, &["X", "Y", "td"])],
            vec![pos(source, &["X", "Y"])],
        ));
    }

    // Layer 2: repairs with annotations. For each primed relation:
    //   R(X, Y, tss) ← R(X, Y, td), not R(X, Y, fa).
    //   R(X, Y, tss) ← R(X, Y, ta).
    //   ← R(X, Y, ta), R(X, Y, fa).
    for prime in ["r1p", "s1p", "r2p", "s2p"] {
        p.add_rule(Rule::new(
            vec![head(prime, &["X", "Y", "tss"])],
            vec![pos(prime, &["X", "Y", "td"]), naf(prime, &["X", "Y", "fa"])],
        ));
        p.add_rule(Rule::new(
            vec![head(prime, &["X", "Y", "tss"])],
            vec![pos(prime, &["X", "Y", "ta"])],
        ));
        p.add_constraint(vec![
            pos(prime, &["X", "Y", "ta"]),
            pos(prime, &["X", "Y", "fa"]),
        ]);
    }

    // Violation / repair rules of the appendix.
    //   R1(X, Y, fa) ← R1(X,Y,td), S1(Z,Y,td), not aux1(X,Z), not aux2(Z).
    p.add_rule(Rule::new(
        vec![head("r1p", &["X", "Y", "fa"])],
        vec![
            pos("r1p", &["X", "Y", "td"]),
            pos("s1p", &["Z", "Y", "td"]),
            naf("aux1", &["X", "Z"]),
            naf("aux2", &["Z"]),
        ],
    ));
    //   aux1(X, Z) ← R2(X, U, td), S2(Z, U, td).
    p.add_rule(Rule::new(
        vec![head("aux1", &["X", "Z"])],
        vec![pos("r2p", &["X", "U", "td"]), pos("s2p", &["Z", "U", "td"])],
    ));
    //   aux2(Z) ← S2(Z, W, td).
    p.add_rule(Rule::new(
        vec![head("aux2", &["Z"])],
        vec![pos("s2p", &["Z", "W", "td"])],
    ));
    //   R1(X,Y,fa) ∨ R2(X,W,ta) ← R1(X,Y,td), S1(Z,Y,td), not aux1(X,Z),
    //                              S2(Z,W,td), chosen(X,Z,W).
    p.add_rule(Rule::new(
        vec![
            head("r1p", &["X", "Y", "fa"]),
            head("r2p", &["X", "W", "ta"]),
        ],
        vec![
            pos("r1p", &["X", "Y", "td"]),
            pos("s1p", &["Z", "Y", "td"]),
            naf("aux1", &["X", "Z"]),
            pos("s2p", &["Z", "W", "td"]),
            pos("chosen", &["X", "Z", "W"]),
        ],
    ));
    //   chosen(X,Z,W) ← R1(X,Y,td), S1(Z,Y,td), not aux1(X,Z), S2(Z,W,td),
    //                   not diffchoice(X,Z,W).
    p.add_rule(Rule::new(
        vec![head("chosen", &["X", "Z", "W"])],
        vec![
            pos("r1p", &["X", "Y", "td"]),
            pos("s1p", &["Z", "Y", "td"]),
            naf("aux1", &["X", "Z"]),
            pos("s2p", &["Z", "W", "td"]),
            naf("diffchoice", &["X", "Z", "W"]),
        ],
    ));
    //   diffchoice(X,Z,W) ← chosen(X,Z,U), S2(Z,W,td), U ≠ W.
    p.add_rule(Rule::new(
        vec![head("diffchoice", &["X", "Z", "W"])],
        vec![
            pos("chosen", &["X", "Z", "U"]),
            pos("s2p", &["Z", "W", "td"]),
            BodyItem::Builtin(Builtin::new(BuiltinOp::Neq, Term::var("U"), Term::var("W"))),
        ],
    ));
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use datalog::{AnswerSets, SolverConfig};
    use std::collections::BTreeSet;

    fn t(a: &str, b: &str) -> Tuple {
        Tuple::strs([a, b])
    }

    /// E3: the Section 3.1 program on the instance the paper discusses
    /// (r1 = {(a,b)}, s1 = {(c,b)}, r2 = {}, s2 = {(c,e),(c,f)}).
    #[test]
    fn section31_program_solutions() {
        let program = section31_program(
            &[t("a", "b")],
            &[],
            &[t("c", "b")],
            &[t("c", "e"), t("c", "f")],
        );
        let sets = AnswerSets::compute(&program, SolverConfig::default()).unwrap();
        // Four stable models: delete R1(a,b) (under either choice) or insert
        // R2(a,e) / R2(a,f).
        assert_eq!(sets.len(), 4);
        // Solutions = primed contents; collect the distinct (r1p, r2p) pairs.
        type RelationContents = Vec<Vec<String>>;
        let mut shapes: BTreeSet<(RelationContents, RelationContents)> = BTreeSet::new();
        for i in 0..sets.len() {
            let r1p: Vec<Vec<String>> = sets
                .tuples_in(i, "r1p")
                .into_iter()
                .map(|args| args.iter().map(|a| a.to_string()).collect())
                .collect();
            let r2p: Vec<Vec<String>> = sets
                .tuples_in(i, "r2p")
                .into_iter()
                .map(|args| args.iter().map(|a| a.to_string()).collect())
                .collect();
            shapes.insert((r1p, r2p));
        }
        assert_eq!(shapes.len(), 3);
        assert!(shapes.contains(&(vec![], vec![])));
        assert!(shapes.contains(&(
            vec![vec!["a".to_string(), "b".to_string()]],
            vec![vec!["a".to_string(), "e".to_string()]]
        )));
        assert!(shapes.contains(&(
            vec![vec!["a".to_string(), "b".to_string()]],
            vec![vec!["a".to_string(), "f".to_string()]]
        )));
    }

    /// When the DEC is already satisfied the only solution keeps everything.
    #[test]
    fn section31_program_consistent_instance() {
        let program = section31_program(
            &[t("a", "b")],
            &[t("a", "e")],
            &[t("c", "b")],
            &[t("c", "e")],
        );
        let sets = AnswerSets::compute(&program, SolverConfig::default()).unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets.tuples_in(0, "r1p").len(), 1);
        assert_eq!(sets.tuples_in(0, "r2p").len(), 1);
    }

    /// E6: Example 4's combined program has exactly the three solutions the
    /// paper lists.
    #[test]
    fn example4_program_has_three_solutions() {
        let program = example4_program(
            &[t("a", "b")],
            &[],
            &[],
            &[t("c", "e"), t("c", "f")],
            &[t("c", "b")],
        );
        let sets = AnswerSets::compute(&program, SolverConfig::default()).unwrap();
        // Distinct solutions over (r1p, r2p, s1p):
        let mut shapes: BTreeSet<(usize, Vec<Vec<String>>, usize)> = BTreeSet::new();
        for i in 0..sets.len() {
            let r1p = sets.tuples_in(i, "r1p").len();
            let r2p: Vec<Vec<String>> = sets
                .tuples_in(i, "r2p")
                .into_iter()
                .map(|args| args.iter().map(|a| a.to_string()).collect())
                .collect();
            let s1p = sets.tuples_in(i, "s1p").len();
            shapes.insert((r1p, r2p, s1p));
        }
        assert_eq!(shapes.len(), 3);
        // Every solution imports U's tuple into S1.
        for i in 0..sets.len() {
            assert_eq!(sets.tuples_in(i, "s1p").len(), 1);
        }
        // The three solutions: {R1(a,b), R2(a,f)}, {} and {R1(a,b), R2(a,e)}.
        assert!(shapes.contains(&(0, vec![], 1)));
        assert!(shapes.contains(&(1, vec![vec!["a".into(), "e".into()]], 1)));
        assert!(shapes.contains(&(1, vec![vec!["a".into(), "f".into()]], 1)));
    }

    /// E4: the appendix LAV program has exactly the stable models M1–M4.
    #[test]
    fn appendix_lav_program_has_four_stable_models() {
        let program = appendix_lav_program(
            &[t("a", "b")],
            &[],
            &[t("c", "b")],
            &[t("c", "e"), t("c", "f")],
        );
        let sets = AnswerSets::compute(&program, SolverConfig::default()).unwrap();
        assert_eq!(sets.len(), 4);

        // Solutions are the tss-annotated tuples. The paper's four models
        // give rM1 = {…, R′1(a,b), R′2(a,f)}, rM2 = rM4 = {no R′1/R′2},
        // rM3 = {…, R′1(a,b), R′2(a,e)}.
        let mut kept_r1 = 0;
        let mut inserted: BTreeSet<String> = BTreeSet::new();
        for i in 0..sets.len() {
            let r1_tss: Vec<_> = sets
                .tuples_in(i, "r1p")
                .into_iter()
                .filter(|args| args.last().map(|a| a.as_ref() == "tss").unwrap_or(false))
                .collect();
            let r2_tss: Vec<_> = sets
                .tuples_in(i, "r2p")
                .into_iter()
                .filter(|args| args.last().map(|a| a.as_ref() == "tss").unwrap_or(false))
                .collect();
            // s1 and s2 keep their original tuples in every model.
            let s1_tss = sets
                .tuples_in(i, "s1p")
                .into_iter()
                .filter(|args| args.last().map(|a| a.as_ref() == "tss").unwrap_or(false))
                .count();
            let s2_tss = sets
                .tuples_in(i, "s2p")
                .into_iter()
                .filter(|args| args.last().map(|a| a.as_ref() == "tss").unwrap_or(false))
                .count();
            assert_eq!(s1_tss, 1);
            assert_eq!(s2_tss, 2);
            if r1_tss.is_empty() {
                assert!(r2_tss.is_empty());
            } else {
                kept_r1 += 1;
                assert_eq!(r2_tss.len(), 1);
                inserted.insert(r2_tss[0][1].to_string());
            }
        }
        assert_eq!(kept_r1, 2);
        assert_eq!(inserted, BTreeSet::from(["e".to_string(), "f".to_string()]));
    }
}

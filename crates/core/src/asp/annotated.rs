//! The annotation-based specification program of a peer's solutions.
//!
//! This is the general-purpose encoding used for peer consistent query
//! answering (the style of Section 4.2 and the appendix, with the annotation
//! constants `td`, `ta`, `fa`, `t*`, `t**` realized as predicate suffixes):
//!
//! * every *flexible* relation `R` — a relation whose contents may change in
//!   a solution, i.e. the peer's own relations and the relations of
//!   same-trusted peers mentioned in its DECs — gets annotated copies
//!   `R__td` (original), `R__ta` (advised insertion), `R__fa` (advised
//!   deletion), `R__ts` (original-or-inserted, the paper's `t*`) and
//!   `R__tss` (true in the solution, the paper's `t**`);
//! * relations of more-trusted peers stay *fixed* and are referenced
//!   directly as material relations;
//! * every trusted DEC and local IC contributes **repair rules** (whose
//!   heads advise deletions of flexible body tuples and/or insertions of the
//!   flexible consequent tuple, with the `choice` operator selecting
//!   existential witnesses among the fixed companion tuples, exactly as in
//!   rule (9) of the paper) and a **final-check denial constraint** over the
//!   `tss` contents that guarantees every answer set denotes a consistent
//!   solution;
//! * the answer sets of the program are in correspondence with the peer's
//!   solutions: the solution contents of a flexible relation are its `tss`
//!   atoms, and fixed relations keep their material contents.
//!
//! Supported constraint classes: universal (the consequent is split atom by
//! atom), referential with at most one flexible consequent atom and witnesses
//! bound by fixed consequent atoms, equality-generating and denial. These
//! cover every constraint used in the paper and the benchmark workloads; the
//! generator rejects anything else with [`CoreError::Unsupported`], mirroring
//! the restrictions the paper itself imposes on the repair layer
//! (Section 4.2: "no cycles and single atom consequents").

use crate::asp::encode::{
    ann, annotated_predicate, copy_rule, encode_value, facts_for_system, positional_vars,
    ValueDecoder,
};
use crate::error::CoreError;
use crate::system::{P2PSystem, PeerId};
use crate::Result;
use constraints::{AtomPattern, Constraint, ConstraintClass, ConstraintHead};
use datalog::{Atom, BodyItem, Builtin, BuiltinOp, ChoiceAtom, Program, Rule, Term};
use relalg::query::{CompareOp, Term as RelTerm};
use relalg::{Database, RelationSchema};
use std::collections::{BTreeMap, BTreeSet};

/// The generated specification program for one peer, together with the
/// metadata needed to interpret its answer sets.
#[derive(Debug, Clone)]
pub struct AnnotatedSpec {
    /// The peer the program was generated for.
    pub peer: PeerId,
    /// Namespace prefix used for annotated predicates (the peer's name).
    pub namespace: String,
    /// The specification program (facts included).
    pub program: Program,
    /// Relations with annotated (changeable) copies.
    pub flexible: BTreeSet<String>,
    /// All relations relevant to the peer (own + mentioned in trusted DECs).
    pub relevant: BTreeSet<String>,
    /// Arity of every relevant relation.
    pub arities: BTreeMap<String, usize>,
    /// Decoder from constant symbols back to domain values.
    pub decoder: ValueDecoder,
}

impl AnnotatedSpec {
    /// The predicate holding the *solution* contents of a relation: the `tss`
    /// copy for flexible relations, the material relation itself otherwise.
    pub fn solution_predicate(&self, relation: &str) -> String {
        if self.flexible.contains(relation) {
            annotated_predicate(&self.namespace, relation, ann::TSS)
        } else {
            relation.to_string()
        }
    }

    /// Decode the answer sets of this program into solution databases
    /// (deduplicated, over the relevant relations).
    pub fn solution_databases(&self, sets: &datalog::AnswerSets) -> Result<Vec<Database>> {
        let mut out: Vec<Database> = Vec::new();
        let mut seen = BTreeSet::new();
        for idx in 0..sets.len() {
            let mut db = Database::new();
            for relation in &self.relevant {
                let arity = *self.arities.get(relation).unwrap_or(&0);
                db.add_relation(relalg::Relation::new(RelationSchema::with_arity(
                    relation.clone(),
                    arity,
                )));
                let pred = self.solution_predicate(relation);
                for args in sets.tuples_in(idx, &pred) {
                    let tuple = self.decoder.decode_tuple(&args);
                    db.insert(relation, tuple)?;
                }
            }
            let signature: Vec<relalg::database::GroundAtom> =
                db.ground_atoms().into_iter().collect();
            if seen.insert(signature) {
                out.push(db);
            }
        }
        Ok(out)
    }
}

/// Generate the annotated specification program for `peer`.
pub fn annotated_program(system: &P2PSystem, peer: &PeerId) -> Result<AnnotatedSpec> {
    annotated_program_with(system, peer, None)
}

/// [`annotated_program`] with the instance facts encoded through the
/// store's symbol table when one is supplied: every occurrence of an
/// interned constant aliases one shared `Arc<str>` instead of re-rendering
/// (the interned data plane's fact encoding).
pub fn annotated_program_with(
    system: &P2PSystem,
    peer: &PeerId,
    symbols: Option<&relalg::SymbolTable>,
) -> Result<AnnotatedSpec> {
    let peer_data = system.peer(peer)?;
    let namespace = peer.name().to_string();
    let (less_decs, same_decs) = system.trusted_decs_of(peer);

    // Flexible relations: the peer's own plus same-trusted peers' relations
    // mentioned in its same-trust DECs.
    let mut flexible: BTreeSet<String> = peer_data.relation_names();
    let same_relations = system.relations_same(peer);
    for dec in &same_decs {
        for rel in dec.constraint.relations() {
            if same_relations.contains(&rel) {
                flexible.insert(rel);
            }
        }
    }

    // Relevant relations: own + everything mentioned in trusted DECs.
    let mut relevant: BTreeSet<String> = peer_data.relation_names();
    for dec in less_decs.iter().chain(same_decs.iter()) {
        relevant.extend(dec.constraint.relations());
    }

    // Arities.
    let mut arities = BTreeMap::new();
    for rel in &relevant {
        let owner = system
            .owner_of(rel)
            .ok_or_else(|| CoreError::UnknownRelation {
                peer: peer.to_string(),
                relation: rel.clone(),
            })?;
        let arity = system
            .peer(&owner)?
            .schema
            .relation(rel)
            .map(RelationSchema::arity)
            .unwrap_or(0);
        arities.insert(rel.clone(), arity);
    }

    let mut gen = Generator {
        namespace: namespace.clone(),
        flexible: flexible.clone(),
        program: Program::new(),
        aux_counter: 0,
    };

    // Facts for every peer instance (only relevant relations are ever read,
    // extra facts are harmless and keep the generator simple).
    match symbols {
        Some(symbols) => {
            crate::asp::encode::facts_for_system_shared(system, &mut gen.program, symbols)
        }
        None => facts_for_system(system, &mut gen.program),
    }

    // Annotation scaffolding for flexible relations.
    for rel in &flexible {
        gen.scaffolding(rel, *arities.get(rel).unwrap_or(&0));
    }

    // Repair rules + final checks for DECs and local ICs.
    for dec in less_decs.iter().chain(same_decs.iter()) {
        gen.constraint_rules(&dec.constraint)?;
    }
    for ic in &peer_data.local_ics {
        gen.constraint_rules(ic)?;
    }

    Ok(AnnotatedSpec {
        peer: peer.clone(),
        namespace,
        program: gen.program,
        flexible,
        relevant,
        arities,
        decoder: ValueDecoder::for_system(system),
    })
}

/// Internal rule generator.
struct Generator {
    namespace: String,
    flexible: BTreeSet<String>,
    program: Program,
    aux_counter: usize,
}

impl Generator {
    fn pred(&self, relation: &str, annotation: &str) -> String {
        annotated_predicate(&self.namespace, relation, annotation)
    }

    /// td / ts / tss / coherence scaffolding for one flexible relation.
    fn scaffolding(&mut self, relation: &str, arity: usize) {
        let vars = positional_vars(arity);
        let td = self.pred(relation, ann::TD);
        let ta = self.pred(relation, ann::TA);
        let fa = self.pred(relation, ann::FA);
        let ts = self.pred(relation, ann::TS);
        let tss = self.pred(relation, ann::TSS);

        // R__td(x̄) ← R(x̄).
        self.program.add_rule(copy_rule(&td, relation, arity));
        // R__ts(x̄) ← R__td(x̄).     R__ts(x̄) ← R__ta(x̄).
        self.program.add_rule(Rule::new(
            vec![Atom::from_terms(&ts, vars.clone())],
            vec![BodyItem::Pos(Atom::from_terms(&td, vars.clone()))],
        ));
        self.program.add_rule(Rule::new(
            vec![Atom::from_terms(&ts, vars.clone())],
            vec![BodyItem::Pos(Atom::from_terms(&ta, vars.clone()))],
        ));
        // R__tss(x̄) ← R__td(x̄), not R__fa(x̄).     R__tss(x̄) ← R__ta(x̄).
        self.program.add_rule(Rule::new(
            vec![Atom::from_terms(&tss, vars.clone())],
            vec![
                BodyItem::Pos(Atom::from_terms(&td, vars.clone())),
                BodyItem::Naf(Atom::from_terms(&fa, vars.clone())),
            ],
        ));
        self.program.add_rule(Rule::new(
            vec![Atom::from_terms(&tss, vars.clone())],
            vec![BodyItem::Pos(Atom::from_terms(&ta, vars.clone()))],
        ));
        // ← R__ta(x̄), R__fa(x̄).
        self.program.add_constraint(vec![
            BodyItem::Pos(Atom::from_terms(&ta, vars.clone())),
            BodyItem::Pos(Atom::from_terms(&fa, vars)),
        ]);
    }

    /// Repair rules and final check for one constraint (DEC or local IC).
    fn constraint_rules(&mut self, constraint: &Constraint) -> Result<()> {
        match constraint.class() {
            ConstraintClass::Denial => {
                self.denial_rules(constraint, None);
                Ok(())
            }
            ConstraintClass::EqualityGenerating => {
                let (l, r) = match &constraint.head {
                    ConstraintHead::Equality(l, r) => (l.clone(), r.clone()),
                    _ => unreachable!("classified as EGD"),
                };
                let extra = Builtin::new(BuiltinOp::Neq, convert_term(&l), convert_term(&r));
                self.denial_rules(constraint, Some(extra));
                Ok(())
            }
            ConstraintClass::Universal => {
                for head in constraint.head_atoms().to_vec() {
                    self.universal_rules(constraint, &head);
                }
                Ok(())
            }
            ConstraintClass::Referential => self.referential_rules(constraint),
        }
    }

    /// Denial-style constraints (including EGDs via an extra disequality):
    /// a disjunctive deletion rule over the flexible body atoms plus a final
    /// check over the solution contents.
    fn denial_rules(&mut self, constraint: &Constraint, extra: Option<Builtin>) {
        let mut violation_body = self.body_items(constraint, ann::TS);
        let mut check_body = self.body_items(constraint, ann::TSS);
        if let Some(builtin) = extra {
            violation_body.push(BodyItem::Builtin(builtin.clone()));
            check_body.push(BodyItem::Builtin(builtin));
        }
        let deletions = self.deletion_heads(constraint);
        if !deletions.is_empty() {
            self.program.add_rule(Rule::new(deletions, violation_body));
        } else {
            // Nothing can change: the violation condition itself is a
            // constraint (over the original data, which equals the solution
            // data for fully fixed bodies).
            self.program.add_constraint(violation_body);
        }
        self.program.add_constraint(check_body);
    }

    /// Universal tuple-generating constraints with a single consequent atom
    /// `H`: delete a flexible body tuple or insert the consequent (when `H`
    /// is flexible); plus the final check.
    fn universal_rules(&mut self, constraint: &Constraint, head: &AtomPattern) {
        let head_terms: Vec<Term> = head.terms.iter().map(convert_term).collect();
        let head_flexible = self.flexible.contains(&head.relation);

        // Violation rule: body over ts, consequent not yet present in the
        // original data.
        let mut body = self.body_items(constraint, ann::TS);
        let satisfied_pred = if head_flexible {
            self.pred(&head.relation, ann::TD)
        } else {
            head.relation.clone()
        };
        body.push(BodyItem::Naf(Atom::from_terms(
            &satisfied_pred,
            head_terms.clone(),
        )));
        let mut heads = self.deletion_heads(constraint);
        if head_flexible {
            heads.push(Atom::from_terms(
                self.pred(&head.relation, ann::TA),
                head_terms.clone(),
            ));
        }
        if heads.is_empty() {
            self.program.add_constraint(body);
        } else {
            self.program.add_rule(Rule::new(heads, body));
        }

        // Final check: body over tss implies consequent over tss.
        let mut check = self.body_items(constraint, ann::TSS);
        let check_pred = if head_flexible {
            self.pred(&head.relation, ann::TSS)
        } else {
            head.relation.clone()
        };
        check.push(BodyItem::Naf(Atom::from_terms(&check_pred, head_terms)));
        self.program.add_constraint(check);
    }

    /// Referential constraints (existential consequent): the Section 3.1
    /// pattern with `aux` predicates and the choice operator.
    fn referential_rules(&mut self, constraint: &Constraint) -> Result<()> {
        let head_atoms = constraint.head_atoms().to_vec();
        let flexible_heads: Vec<&AtomPattern> = head_atoms
            .iter()
            .filter(|a| self.flexible.contains(&a.relation))
            .collect();
        let fixed_heads: Vec<&AtomPattern> = head_atoms
            .iter()
            .filter(|a| !self.flexible.contains(&a.relation))
            .collect();
        if flexible_heads.len() > 1 {
            return Err(CoreError::Unsupported(format!(
                "referential constraint `{}` has more than one changeable consequent atom",
                constraint.name
            )));
        }
        let evars: BTreeSet<String> = constraint.existential_variables();
        let body_vars = constraint.universal_variables();

        // Universal variables occurring in the consequent (the paper's (x, z)).
        let head_uvars: Vec<Term> = ordered_vars(&head_atoms, &body_vars);
        // Universal variables occurring in the *fixed* consequent atoms.
        let wit_uvars: Vec<Term> = ordered_vars_refs(&fixed_heads, &body_vars);

        let id = self.aux_counter;
        self.aux_counter += 1;
        let aux_sat = format!("{}__aux_sat_{}_{}", self.namespace, constraint.name, id);
        let aux_sat_tss = format!("{}__aux_sat_tss_{}_{}", self.namespace, constraint.name, id);
        let aux_wit = format!("{}__aux_wit_{}_{}", self.namespace, constraint.name, id);

        // aux_sat(ū) ← consequent atoms over td / material data.
        let sat_body: Vec<BodyItem> = head_atoms
            .iter()
            .map(|a| BodyItem::Pos(self.map_atom(a, ann::TD)))
            .collect();
        self.program.add_rule(Rule::new(
            vec![Atom::from_terms(&aux_sat, head_uvars.clone())],
            sat_body,
        ));
        // aux_sat_tss(ū) ← consequent atoms over the solution contents.
        let sat_tss_body: Vec<BodyItem> = head_atoms
            .iter()
            .map(|a| BodyItem::Pos(self.map_atom(a, ann::TSS)))
            .collect();
        self.program.add_rule(Rule::new(
            vec![Atom::from_terms(&aux_sat_tss, head_uvars.clone())],
            sat_tss_body,
        ));

        let deletions = self.deletion_heads(constraint);

        // Witness availability and the choice-based insertion alternative are
        // only possible when the fixed consequent atoms bind every
        // existential variable (rule (9)'s companion `S2(z, w)`).
        let fixed_bind_all = !fixed_heads.is_empty()
            && evars
                .iter()
                .all(|v| fixed_heads.iter().any(|a| a.variables().contains(v)));

        if fixed_bind_all {
            // aux_wit(ūwit) ← fixed consequent atoms (material data).
            let wit_body: Vec<BodyItem> = fixed_heads
                .iter()
                .map(|a| BodyItem::Pos(self.map_atom(a, ann::TD)))
                .collect();
            self.program.add_rule(Rule::new(
                vec![Atom::from_terms(&aux_wit, wit_uvars.clone())],
                wit_body,
            ));

            // Deletion-only rule when no witness exists (rule (6)).
            let mut no_wit_body = self.body_items(constraint, ann::TS);
            no_wit_body.push(BodyItem::Naf(Atom::from_terms(
                &aux_sat,
                head_uvars.clone(),
            )));
            no_wit_body.push(BodyItem::Naf(Atom::from_terms(&aux_wit, wit_uvars.clone())));
            if deletions.is_empty() {
                self.program.add_constraint(no_wit_body);
            } else {
                self.program
                    .add_rule(Rule::new(deletions.clone(), no_wit_body));
            }

            // Choice rule when a witness exists (rule (9)).
            let mut choice_body = self.body_items(constraint, ann::TS);
            choice_body.push(BodyItem::Naf(Atom::from_terms(
                &aux_sat,
                head_uvars.clone(),
            )));
            for a in &fixed_heads {
                choice_body.push(BodyItem::Pos(self.map_atom(a, ann::TD)));
            }
            let chosen: Vec<Term> = evars.iter().map(|v| Term::var(v.clone())).collect();
            choice_body.push(BodyItem::Choice(ChoiceAtom::new(
                head_uvars.clone(),
                chosen,
            )));
            let mut choice_heads = deletions.clone();
            if let Some(fh) = flexible_heads.first() {
                let terms: Vec<Term> = fh.terms.iter().map(convert_term).collect();
                choice_heads.push(Atom::from_terms(self.pred(&fh.relation, ann::TA), terms));
            }
            if choice_heads.is_empty() {
                // Nothing to change even though a witness exists: the
                // violation (over original data) is then unrepairable.
                let mut body = choice_body;
                body.pop(); // drop the choice atom of an otherwise head-less rule
                self.program.add_constraint(body);
            } else {
                self.program.add_rule(Rule::new(choice_heads, choice_body));
            }
        } else {
            // No usable witness source: only deletions can repair the
            // violation.
            let mut body = self.body_items(constraint, ann::TS);
            body.push(BodyItem::Naf(Atom::from_terms(
                &aux_sat,
                head_uvars.clone(),
            )));
            if deletions.is_empty() {
                self.program.add_constraint(body);
            } else {
                self.program.add_rule(Rule::new(deletions, body));
            }
        }

        // Final check over the solution contents.
        let mut check = self.body_items(constraint, ann::TSS);
        check.push(BodyItem::Naf(Atom::from_terms(&aux_sat_tss, head_uvars)));
        self.program.add_constraint(check);
        Ok(())
    }

    /// The body of a constraint mapped into the program: flexible relations
    /// via the given annotation, fixed relations as material atoms, plus the
    /// built-in conditions.
    fn body_items(&self, constraint: &Constraint, annotation: &str) -> Vec<BodyItem> {
        let mut out: Vec<BodyItem> = constraint
            .body
            .iter()
            .map(|a| BodyItem::Pos(self.map_atom(a, annotation)))
            .collect();
        for cond in &constraint.conditions {
            out.push(BodyItem::Builtin(Builtin::new(
                convert_op(cond.op),
                convert_term(&cond.left),
                convert_term(&cond.right),
            )));
        }
        out
    }

    /// Deletion advisories for the flexible body atoms of a constraint.
    fn deletion_heads(&self, constraint: &Constraint) -> Vec<Atom> {
        constraint
            .body
            .iter()
            .filter(|a| self.flexible.contains(&a.relation))
            .map(|a| {
                let terms: Vec<Term> = a.terms.iter().map(convert_term).collect();
                Atom::from_terms(self.pred(&a.relation, ann::FA), terms)
            })
            .collect()
    }

    /// Map a constraint atom into the program under the given annotation
    /// (flexible relations) or as a material atom (fixed relations).
    fn map_atom(&self, atom: &AtomPattern, annotation: &str) -> Atom {
        let terms: Vec<Term> = atom.terms.iter().map(convert_term).collect();
        if self.flexible.contains(&atom.relation) {
            Atom::from_terms(self.pred(&atom.relation, annotation), terms)
        } else {
            Atom::from_terms(&atom.relation, terms)
        }
    }
}

/// Convert a relational term into a logic-program term.
pub(crate) fn convert_term(term: &RelTerm) -> Term {
    match term {
        RelTerm::Var(v) => Term::var(v.clone()),
        RelTerm::Const(value) => Term::cnst(encode_value(value)),
    }
}

/// Convert a comparison operator.
pub(crate) fn convert_op(op: CompareOp) -> BuiltinOp {
    match op {
        CompareOp::Eq => BuiltinOp::Eq,
        CompareOp::Neq => BuiltinOp::Neq,
        CompareOp::Lt => BuiltinOp::Lt,
        CompareOp::Leq => BuiltinOp::Leq,
        CompareOp::Gt => BuiltinOp::Gt,
        CompareOp::Geq => BuiltinOp::Geq,
    }
}

/// Universal variables occurring in the given atoms, in first-occurrence
/// order, as terms.
fn ordered_vars(atoms: &[AtomPattern], universal: &BTreeSet<String>) -> Vec<Term> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for atom in atoms {
        for term in &atom.terms {
            if let Some(v) = term.as_var() {
                if universal.contains(v) && seen.insert(v.to_string()) {
                    out.push(Term::var(v));
                }
            }
        }
    }
    out
}

fn ordered_vars_refs(atoms: &[&AtomPattern], universal: &BTreeSet<String>) -> Vec<Term> {
    let owned: Vec<AtomPattern> = atoms.iter().map(|a| (*a).clone()).collect();
    ordered_vars(&owned, universal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{example1_system, TrustLevel};
    use datalog::{AnswerSets, SolverConfig};
    use relalg::Tuple;

    #[test]
    fn example1_spec_reproduces_the_two_solutions() {
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let spec = annotated_program(&sys, &p1).unwrap();
        assert_eq!(
            spec.flexible,
            BTreeSet::from(["R1".to_string(), "R3".to_string()])
        );
        assert!(spec.relevant.contains("R2"));
        let sets = AnswerSets::compute(&spec.program, SolverConfig::default()).unwrap();
        let solutions = spec.solution_databases(&sets).unwrap();
        assert_eq!(solutions.len(), 2);
        for s in &solutions {
            assert!(s.holds("R1", &Tuple::strs(["c", "d"])));
            assert!(s.holds("R1", &Tuple::strs(["a", "e"])));
            assert!(s.holds("R1", &Tuple::strs(["a", "b"])));
            assert!(!s.holds("R3", &Tuple::strs(["a", "f"])));
            assert_eq!(s.relation("R2").unwrap().len(), 2);
        }
        let keeps_st = solutions
            .iter()
            .filter(|s| s.holds("R1", &Tuple::strs(["s", "t"])))
            .count();
        assert_eq!(keeps_st, 1);
    }

    #[test]
    fn spec_agrees_with_definition4_solutions_on_example1() {
        use crate::solution::{solutions_for, SolutionOptions};
        let sys = example1_system();
        let p1 = PeerId::new("P1");
        let spec = annotated_program(&sys, &p1).unwrap();
        let sets = AnswerSets::compute(&spec.program, SolverConfig::default()).unwrap();
        let asp_solutions = spec.solution_databases(&sets).unwrap();
        let def4 = solutions_for(&sys, &p1, SolutionOptions::default()).unwrap();

        let asp_contents: BTreeSet<Vec<relalg::database::GroundAtom>> = asp_solutions
            .iter()
            .map(|db| db.ground_atoms().into_iter().collect())
            .collect();
        let def4_contents: BTreeSet<Vec<relalg::database::GroundAtom>> = def4
            .iter()
            .map(|s| {
                s.database
                    .restrict(["R1", "R2", "R3"])
                    .ground_atoms()
                    .into_iter()
                    .collect()
            })
            .collect();
        assert_eq!(asp_contents, def4_contents);
    }

    #[test]
    fn section31_referential_spec_has_four_answer_sets() {
        // The Section 3.1 / appendix setting under the annotated encoding.
        use constraints::builders::mixed_referential;
        let mut sys = P2PSystem::new();
        sys.add_peer("P").unwrap();
        sys.add_peer("Q").unwrap();
        let p = PeerId::new("P");
        let q = PeerId::new("Q");
        for (peer, rel) in [(&p, "R1"), (&p, "R2"), (&q, "S1"), (&q, "S2")] {
            sys.add_relation(peer, RelationSchema::new(rel, &["x", "y"]))
                .unwrap();
        }
        sys.insert(&p, "R1", Tuple::strs(["a", "b"])).unwrap();
        sys.insert(&q, "S1", Tuple::strs(["c", "b"])).unwrap();
        sys.insert(&q, "S2", Tuple::strs(["c", "e"])).unwrap();
        sys.insert(&q, "S2", Tuple::strs(["c", "f"])).unwrap();
        sys.add_dec(
            &p,
            &q,
            mixed_referential("sigma3", "R1", "S1", "R2", "S2").unwrap(),
        )
        .unwrap();
        sys.set_trust(&p, TrustLevel::Less, &q).unwrap();

        let spec = annotated_program(&sys, &p).unwrap();
        let sets = AnswerSets::compute(&spec.program, SolverConfig::default()).unwrap();
        // The appendix lists four stable models M1–M4.
        assert_eq!(sets.len(), 4);
        let solutions = spec.solution_databases(&sets).unwrap();
        // … corresponding to three distinct solutions: keep R1(a,b) and
        // insert R2(a,e) or R2(a,f), or delete R1(a,b).
        assert_eq!(solutions.len(), 3);
        let with_r1: Vec<&Database> = solutions
            .iter()
            .filter(|s| s.holds("R1", &Tuple::strs(["a", "b"])))
            .collect();
        assert_eq!(with_r1.len(), 2);
        for s in &with_r1 {
            assert_eq!(s.relation("R2").unwrap().len(), 1);
        }
        let without_r1: Vec<&Database> = solutions
            .iter()
            .filter(|s| !s.holds("R1", &Tuple::strs(["a", "b"])))
            .collect();
        assert_eq!(without_r1.len(), 1);
        assert!(without_r1[0].relation("R2").unwrap().is_empty());
    }

    #[test]
    fn referential_without_witness_deletes_the_violating_tuple() {
        use constraints::builders::mixed_referential;
        let mut sys = P2PSystem::new();
        sys.add_peer("P").unwrap();
        sys.add_peer("Q").unwrap();
        let p = PeerId::new("P");
        let q = PeerId::new("Q");
        for (peer, rel) in [(&p, "R1"), (&p, "R2"), (&q, "S1"), (&q, "S2")] {
            sys.add_relation(peer, RelationSchema::new(rel, &["x", "y"]))
                .unwrap();
        }
        sys.insert(&p, "R1", Tuple::strs(["a", "b"])).unwrap();
        sys.insert(&q, "S1", Tuple::strs(["c", "b"])).unwrap();
        // No S2 tuples for key c: rule (6) applies, R1(a, b) must go.
        sys.add_dec(
            &p,
            &q,
            mixed_referential("sigma3", "R1", "S1", "R2", "S2").unwrap(),
        )
        .unwrap();
        sys.set_trust(&p, TrustLevel::Less, &q).unwrap();

        let spec = annotated_program(&sys, &p).unwrap();
        let sets = AnswerSets::compute(&spec.program, SolverConfig::default()).unwrap();
        let solutions = spec.solution_databases(&sets).unwrap();
        assert_eq!(solutions.len(), 1);
        assert!(!solutions[0].holds("R1", &Tuple::strs(["a", "b"])));
    }

    #[test]
    fn local_ic_constraints_are_enforced() {
        let mut sys = example1_system();
        let p1 = PeerId::new("P1");
        sys.add_local_ic(
            &p1,
            constraints::builders::key_denial("fd_r1", "R1").unwrap(),
        )
        .unwrap();
        let spec = annotated_program(&sys, &p1).unwrap();
        let sets = AnswerSets::compute(&spec.program, SolverConfig::default()).unwrap();
        let solutions = spec.solution_databases(&sets).unwrap();
        assert!(!solutions.is_empty());
        for s in &solutions {
            // The FD forbids both (a, b) and (a, e); (a, e) is forced by the
            // more-trusted import, so (a, b) is gone.
            assert!(!s.holds("R1", &Tuple::strs(["a", "b"])));
            assert!(s.holds("R1", &Tuple::strs(["a", "e"])));
        }
    }

    #[test]
    fn consistent_system_yields_single_identity_solution() {
        let mut sys = P2PSystem::new();
        sys.add_peer("A").unwrap();
        sys.add_peer("B").unwrap();
        let a = PeerId::new("A");
        let b = PeerId::new("B");
        sys.add_relation(&a, RelationSchema::new("RA", &["x"]))
            .unwrap();
        sys.add_relation(&b, RelationSchema::new("RB", &["x"]))
            .unwrap();
        sys.insert(&a, "RA", Tuple::strs(["v"])).unwrap();
        sys.insert(&b, "RB", Tuple::strs(["v"])).unwrap();
        sys.add_dec(
            &a,
            &b,
            constraints::builders::full_inclusion("d", "RB", "RA", 1).unwrap(),
        )
        .unwrap();
        sys.set_trust(&a, TrustLevel::Less, &b).unwrap();
        let spec = annotated_program(&sys, &a).unwrap();
        let sets = AnswerSets::compute(&spec.program, SolverConfig::default()).unwrap();
        let solutions = spec.solution_databases(&sets).unwrap();
        assert_eq!(solutions.len(), 1);
        assert!(solutions[0].holds("RA", &Tuple::strs(["v"])));
    }
}
